package ftl

import (
	"fmt"
	"slices"

	"repro/internal/audit"
	"repro/internal/blockio"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Hooks receive FTL lifecycle events; the vertrace package uses them to
// track per-file valid/invalid page populations. All hooks are optional.
type Hooks struct {
	// Programmed fires when a host or GC write lands on a physical page.
	Programmed func(p PPA, lpa int64, file uint64)
	// Invalidated fires when a live page becomes stale. Its old data is
	// still physically present at this point. file is the page's
	// annotation from the write that stored it.
	Invalidated func(p PPA, file uint64)
	// Destroyed fires when stale data physically ceases to be readable:
	// block erase, pLock, bLock, or scrub.
	Destroyed func(p PPA, file uint64)
}

// FTL is the Evanesco-aware flash translation layer.
type FTL struct {
	cfg    Config
	geo    Geometry
	target Target
	policy Policy
	hooks  Hooks

	tracer  trace.Collector
	traceOn bool
	// ladderDepth counts the recovery-ladder rungs currently on the call
	// stack (escalation, recovery erase, retirement); destructions that
	// complete while it is nonzero are attributed to the ladder phase of
	// the audit ledger.
	ladderDepth int

	l2p    []PPA    // logical page -> physical page
	p2l    []int64  // physical page -> logical page (-1 when none)
	fileOf []uint64 // physical page -> owning file annotation
	status []PageStatus
	// statusCount tracks the page population per PageStatus; every status
	// transition goes through setStatus to keep it exact. It feeds the
	// valid/secured/invalid telemetry gauges.
	statusCount [NumPageStatus]int64

	liveInBlock []int32 // live (valid+secured) pages per global block
	usedInBlock []int32 // programmed pages per global block (free = total-used)
	eraseCount  []int32 // erases per global block (wear)

	// lockedBlocks marks bLocked blocks (set by IssueBLock / escalation,
	// cleared by erase); retired marks blocks pulled from rotation after
	// an erase failure. Both gate further lock/erase/allocate activity.
	lockedBlocks []bool
	retired      []bool

	// retryDepth samples how many fresh-page retries each recovered
	// program failure needed (fault campaigns report its mean/max).
	retryDepth metrics.Summary

	chips  []chipState
	planes int // cached Geometry.PlaneCount()

	// batchTarget is non-nil when the Target also implements BatchTarget;
	// it enables multi-plane read/program grouping and batched SBPI lock
	// pulses.
	batchTarget BatchTarget
	// discardReader is non-nil when the Target also implements
	// DiscardReader: host reads (payload discarded above the FTL) then
	// skip the data round-trip, which lets sharded targets keep the chip
	// work deferred.
	discardReader DiscardReader
	// metaWriter is non-nil when the Target also implements MetaWriter:
	// every committed program is then stamped with remount metadata
	// (LPA, write sequence, security class) in the page's spare area.
	metaWriter MetaWriter
	// groupMetaWriter is non-nil when the MetaWriter also implements
	// GroupMetaWriter: a fully-committed multi-plane stripe is then
	// stamped with one call instead of one per page (the coordinator
	// fast path for deferred targets).
	groupMetaWriter GroupMetaWriter
	// writeSeq is the device-wide monotone write sequence number behind
	// those stamps; Restore resumes it past the highest surviving stamp.
	writeSeq uint64
	// stampSuppressed disables stampMeta inside commitWrite while a
	// stripe's stamps are being issued as one group.
	stampSuppressed bool

	// pendingPages collects secured invalidations per global block between
	// Flush calls (nil = nothing queued for the block); pendingList holds
	// the block ids in first-pend order, possibly with stale entries that
	// DrainPending skips. The flat arrays replace a map: DrainPending runs
	// on every host request, and the map allocation + sort dominated the
	// secSSD flush profile.
	pendingPages [][]PPA
	pendingList  []int
	pendingCount int

	// lockq coalesces pending pLocks per wordline into batched SBPI pulses
	// (lockmgr.go); lockBatching gates the whole path.
	lockBatching bool
	lockq        lockQueue

	// wlMark/wlGen dedupe device-global wordlines without clearing
	// (LockPulses); len(wlMark) = TotalWLs.
	wlMark []int32
	wlGen  int32

	// Multi-plane scratch buffers (hot path, reused across requests).
	stripeScratch []PPA
	stripeOlds    []PPA
	stripeDatas   [][]byte

	// reqClock is the dependency time of the request currently being
	// processed; flash ops issued for the request chain from it.
	reqClock sim.Micros
	// reqStart is the request's arrival time; lock commands are scheduled
	// from it (they overlap the request's foreground work instead of
	// chaining behind it).
	reqStart sim.Micros

	stats Stats

	inGC bool
}

type chipState struct {
	active       []int // per plane: global block currently written, -1 if none
	frontier     []int // per plane: next page index in the active block
	free         []int // erased, ready blocks (global ids)
	pendingErase []int // invalid-only blocks awaiting lazy erase
	rrOffset     int
	fifoCursor   int // VictimFIFO scan position
	planeCursor  int // round-robin start plane for single-page allocation
}

// isActive reports whether block is an open write frontier on its chip.
func (f *FTL) isActive(cs *chipState, block int) bool {
	return cs.active[f.geo.PlaneOfBlock(block)] == block
}

// New creates an FTL over the target flash.
func New(cfg Config, target Target, policy Policy) (*FTL, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if target == nil || policy == nil {
		return nil, fmt.Errorf("ftl: target and policy are required")
	}
	g := cfg.Geometry
	f := &FTL{
		cfg:          cfg,
		geo:          g,
		target:       target,
		policy:       policy,
		l2p:          make([]PPA, cfg.LogicalPages),
		p2l:          make([]int64, g.TotalPages()),
		fileOf:       make([]uint64, g.TotalPages()),
		status:       make([]PageStatus, g.TotalPages()),
		liveInBlock:  make([]int32, g.TotalBlocks()),
		usedInBlock:  make([]int32, g.TotalBlocks()),
		eraseCount:   make([]int32, g.TotalBlocks()),
		lockedBlocks: make([]bool, g.TotalBlocks()),
		retired:      make([]bool, g.TotalBlocks()),
		chips:        make([]chipState, g.Chips),
		planes:       g.PlaneCount(),
		pendingPages: make([][]PPA, g.TotalBlocks()),
	}
	f.tracer = cfg.Tracer
	if f.tracer == nil {
		f.tracer = trace.Nop{}
	}
	f.traceOn = f.tracer.Enabled()
	f.batchTarget, _ = target.(BatchTarget)
	f.discardReader, _ = target.(DiscardReader)
	f.metaWriter, _ = target.(MetaWriter)
	f.groupMetaWriter, _ = target.(GroupMetaWriter)
	if cfg.LockBatch.Enabled && f.batchTarget != nil {
		f.lockBatching = true
		f.lockq.groupIdx = make([]int32, g.TotalWLs())
		f.lockq.pending = make([]bool, g.TotalPages())
		f.wlMark = make([]int32, g.TotalWLs())
	}
	f.statusCount[PageFree] = int64(g.TotalPages())
	for i := range f.l2p {
		f.l2p[i] = NoPPA
	}
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	for c := range f.chips {
		cs := &f.chips[c]
		cs.active = make([]int, f.planes)
		cs.frontier = make([]int, f.planes)
		for pl := range cs.active {
			cs.active[pl] = -1
		}
		cs.free = make([]int, 0, g.BlocksPerChip)
		// All blocks start erased and free.
		for b := g.BlocksPerChip - 1; b >= 0; b-- {
			cs.free = append(cs.free, c*g.BlocksPerChip+b)
		}
	}
	return f, nil
}

// SetHooks installs lifecycle hooks (nil fields are ignored).
func (f *FTL) SetHooks(h Hooks) { f.hooks = h }

// Stats returns a copy of the counters.
func (f *FTL) Stats() Stats { return f.stats }

// Geometry returns the managed geometry.
func (f *FTL) Geometry() Geometry { return f.geo }

// PolicyName returns the active sanitization policy's name.
func (f *FTL) PolicyName() string { return f.policy.Name() }

// Status returns the page-status-table entry for a physical page.
func (f *FTL) Status(p PPA) PageStatus { return f.status[p] }

// setStatus is the single page-status transition point; it keeps the
// per-status population counters exact for the telemetry gauges.
func (f *FTL) setStatus(p PPA, st PageStatus) {
	f.statusCount[f.status[p]]--
	f.statusCount[st]++
	f.status[p] = st
}

// PageStatusCounts returns the device-wide page population per status
// (retired pages are reported separately by RetiredPages).
func (f *FTL) PageStatusCounts() (free, valid, secured, invalid int64) {
	return f.statusCount[PageFree], f.statusCount[PageValid],
		f.statusCount[PageSecured], f.statusCount[PageInvalid]
}

// RetiredPages returns the page population of retired blocks.
func (f *FTL) RetiredPages() int64 { return f.statusCount[PageRetired] }

// BlockRetired reports whether a block has been pulled from rotation.
func (f *FTL) BlockRetired(block int) bool { return f.retired[block] }

// BlockLocked reports whether a block is currently bLocked.
func (f *FTL) BlockLocked(block int) bool { return f.lockedBlocks[block] }

// RetryDepth returns the distribution of fresh-page retries per
// recovered program failure.
func (f *FTL) RetryDepth() metrics.Summary { return f.retryDepth }

// Lookup returns the physical page currently mapped to lpa (NoPPA if
// unmapped).
func (f *FTL) Lookup(lpa int64) PPA {
	if lpa < 0 || lpa >= int64(len(f.l2p)) {
		return NoPPA
	}
	return f.l2p[lpa]
}

// LogicalPages returns the exported capacity in pages.
func (f *FTL) LogicalPages() int { return len(f.l2p) }

// Submit executes one host block-I/O request, starting no earlier than
// dep, and returns its completion time.
func (f *FTL) Submit(req blockio.Request, dep sim.Micros) (sim.Micros, error) {
	if err := req.Validate(); err != nil {
		return dep, err
	}
	if req.LPA+int64(req.Pages) > int64(len(f.l2p)) {
		return dep, fmt.Errorf("ftl: request %v beyond logical capacity %d", req, len(f.l2p))
	}
	f.reqClock = dep
	f.reqStart = dep
	done := dep
	switch req.Op {
	case blockio.OpRead:
		if f.planes > 1 && f.batchTarget != nil {
			done = f.readGrouped(req, dep)
			break
		}
		for i := int64(0); i < int64(req.Pages); i++ {
			f.stats.HostReadPages++
			if p := f.l2p[req.LPA+i]; p != NoPPA {
				f.stats.FlashReads++
				if t := f.hostRead(p, dep); t > done {
					done = t
				}
			}
		}
	case blockio.OpWrite:
		if f.planes > 1 && f.batchTarget != nil {
			t, err := f.writeStriped(req, dep)
			if err != nil {
				return t, err
			}
			done = t
			break
		}
		for i := int64(0); i < int64(req.Pages); i++ {
			t, err := f.writePage(req.LPA+i, !req.Insecure, req.FileID, req.PageData(int(i)), dep)
			if err != nil {
				return done, err
			}
			if t > done {
				done = t
			}
		}
	case blockio.OpTrim:
		for i := int64(0); i < int64(req.Pages); i++ {
			f.stats.HostTrimmedPages++
			lpa := req.LPA + i
			if p := f.l2p[lpa]; p != NoPPA {
				f.l2p[lpa] = NoPPA
				f.invalidate(p)
			}
		}
	}
	if f.traceOn {
		// Lock-queue depth as the lock manager sees it, right before the
		// request-level flush drains it: pages awaiting a policy decision
		// plus pages already coalescing in the batching queue.
		f.tracer.Gauge(trace.GaugeLockQueue, f.reqClock, float64(f.pendingCount+f.lockq.count))
	}
	f.policy.Flush(f)
	// Fault recovery during the flush (a quarantined failed program, an
	// escalation's relocations) can queue fresh sanitize work, and a lock
	// flush can in turn re-pend pages (a failed pulse's escalation
	// relocates live pages whose stale copies re-enter the policy); drain
	// until both queues settle so the request never completes with a
	// secured residue still readable past its deadline.
	for i := 0; ; i++ {
		if i >= 1000 {
			panic("ftl: sanitize flush did not converge after 1000 rounds")
		}
		if f.pendingCount > 0 {
			f.policy.Flush(f)
			continue
		}
		if f.lockBatching && f.lockq.attached > 0 {
			var issued bool
			if f.cfg.LockBatch.Deadline <= 0 {
				issued = f.FlushLocks()
			} else {
				issued = f.flushDueLocks()
			}
			if issued {
				continue
			}
		}
		break
	}
	if f.reqClock > done {
		done = f.reqClock
	}
	if f.traceOn {
		f.tracer.Gauge(trace.GaugeValidPages, done, float64(f.statusCount[PageValid]))
		f.tracer.Gauge(trace.GaugeSecuredPages, done, float64(f.statusCount[PageSecured]))
		f.tracer.Gauge(trace.GaugeInvalidPages, done, float64(f.statusCount[PageInvalid]))
		f.tracer.Gauge(trace.GaugeFreeBlocks, done, float64(f.FreeBlocks()))
	}
	return done, nil
}

// writePage appends one logical page (§2.2 Fig. 3 flow). A failed
// program quarantines the consumed page (the chip's write pointer
// advanced and a partial payload may be readable there) and retries on a
// fresh page.
func (f *FTL) writePage(lpa int64, secure bool, file uint64, data []byte, dep sim.Micros) (sim.Micros, error) {
	f.stats.HostWrittenPages++
	p, err := f.allocate()
	if err != nil {
		return dep, err
	}
	return f.storeAt(p, lpa, secure, file, data, dep)
}

// storeAt programs data onto the already-allocated page p, running the
// failed-program retry ladder (quarantine the consumed page, retry on a
// fresh one), then commits the mapping and invalidates the overwritten
// copy.
func (f *FTL) storeAt(p PPA, lpa int64, secure bool, file uint64, data []byte, dep sim.Micros) (sim.Micros, error) {
	old := f.l2p[lpa]
	f.stats.FlashPrograms++
	done, perr := f.target.Program(p, data, dep)
	retries := 0
	for perr != nil {
		f.quarantineFailedProgram(p, secure, file, done)
		if retries+1 >= maxProgramAttempts {
			return done, fmt.Errorf("ftl: program for lpa %d failed %d times: %w", lpa, retries+1, perr)
		}
		retries++
		f.stats.ProgramRetries++
		var err error
		if p, err = f.allocate(); err != nil {
			return done, err
		}
		f.stats.FlashPrograms++
		done, perr = f.target.Program(p, data, done)
	}
	if retries > 0 {
		f.retryDepth.Add(float64(retries))
	}
	f.commitWrite(p, lpa, secure, file)
	// Invalidate the overwritten copy after the new data is durable.
	if old != NoPPA {
		f.invalidate(old)
	}
	f.maybeGC(f.geo.ChipOf(p))
	return done, nil
}

// stampMeta records a committed write's remount metadata in the page's
// spare area (targets without one skip it). Only successful programs
// are stamped: quarantined and power-cut-torn pages keep no stamp,
// which is how the remount scan tells a torn write from committed data.
func (f *FTL) stampMeta(p PPA, lpa int64, secure bool) {
	if f.metaWriter == nil || f.stampSuppressed {
		return
	}
	f.writeSeq++
	f.metaWriter.WriteMeta(p, lpa, f.writeSeq, secure)
}

// commitWrite publishes the mapping for a freshly-programmed host page.
func (f *FTL) commitWrite(p PPA, lpa int64, secure bool, file uint64) {
	f.stampMeta(p, lpa, secure)
	f.l2p[lpa] = p
	f.p2l[p] = lpa
	f.fileOf[p] = file
	if secure {
		f.setStatus(p, PageSecured)
	} else {
		f.setStatus(p, PageValid)
	}
	f.liveInBlock[f.geo.BlockOf(p)]++
	if f.hooks.Programmed != nil {
		f.hooks.Programmed(p, lpa, file)
	}
	if secure && f.traceOn {
		// Register the initial physical copy of the secret with the audit
		// ledger (GC and ladder relocations register further copies).
		f.tracer.Audit(audit.Event{Kind: audit.KindCopy, Page: uint32(p), Src: audit.NoSrc,
			LPA: lpa, Origin: audit.OriginHost, At: f.reqStart})
	}
}

// readGrouped serves a host read with multi-plane grouping: consecutive
// mapped pages that land on distinct planes of one chip share a single
// tREAD (the bus transfers still serialize per page).
func (f *FTL) readGrouped(req blockio.Request, dep sim.Micros) sim.Micros {
	done := dep
	group := f.lockq.takePages(f.planes)
	chip := -1
	var planeMask uint64
	for i := int64(0); i < int64(req.Pages); i++ {
		f.stats.HostReadPages++
		p := f.l2p[req.LPA+i]
		if p == NoPPA {
			continue
		}
		c := f.geo.ChipOf(p)
		pl := uint64(1) << uint(f.geo.PlaneOfBlock(f.geo.BlockOf(p)))
		if len(group) > 0 && (c != chip || planeMask&pl != 0) {
			done = f.flushReadGroup(group, dep, done)
			group, planeMask = group[:0], 0
		}
		chip = c
		planeMask |= pl
		group = append(group, p)
		if len(group) == f.planes {
			done = f.flushReadGroup(group, dep, done)
			group, planeMask = group[:0], 0
		}
	}
	done = f.flushReadGroup(group, dep, done)
	f.lockq.recycle(group)
	return done
}

// hostRead issues one host-path read. The payload never leaves the FTL
// on this path, so DiscardReader targets serve it without the data
// round-trip (identical timing); plain targets fall back to Target.Read.
func (f *FTL) hostRead(p PPA, dep sim.Micros) sim.Micros {
	if f.discardReader != nil {
		return f.discardReader.ReadDiscard(p, dep)
	}
	_, t := f.target.Read(p, dep)
	return t
}

// flushReadGroup issues one accumulated read group (single-page groups
// fall back to a plain read) and folds its completion into done.
func (f *FTL) flushReadGroup(group []PPA, dep, done sim.Micros) sim.Micros {
	switch {
	case len(group) == 0:
	case len(group) == 1:
		f.stats.FlashReads++
		if t := f.hostRead(group[0], dep); t > done {
			done = t
		}
	default:
		f.stats.FlashReads += uint64(len(group))
		f.stats.ReadGroups++
		f.stats.GroupedReads += uint64(len(group))
		if t := f.batchTarget.ReadGroup(group, dep); t > done {
			done = t
		}
	}
	return done
}

// writeStriped serves a host write with multi-plane striping: up to
// Planes consecutive pages are allocated on distinct planes of one chip
// and programmed under a single shared tPROG. Mappings for every page of
// a stripe are committed before any failure recovery or GC runs, so a
// reentrant flush never observes a chip-programmed page that the mapping
// tables still call free.
func (f *FTL) writeStriped(req blockio.Request, dep sim.Micros) (sim.Micros, error) {
	done := dep
	secure := !req.Insecure
	n := int(req.Pages)
	datas := f.stripeDatas[:0]
	defer func() {
		for k := range datas {
			datas[k] = nil // drop payload references between requests
		}
		f.stripeDatas = datas[:0]
	}()
	for i := 0; i < n; {
		want := min(f.planes, n-i)
		if want == 1 {
			t, err := f.writePage(req.LPA+int64(i), secure, req.FileID, req.PageData(i), dep)
			if err != nil {
				return done, err
			}
			if t > done {
				done = t
			}
			i++
			continue
		}
		stripe := f.allocateStripe(want)
		if len(stripe) == 0 {
			// No chip could open even one plane frontier; let the plain
			// path surface the allocator's error.
			t, err := f.writePage(req.LPA+int64(i), secure, req.FileID, req.PageData(i), dep)
			if err != nil {
				return done, err
			}
			if t > done {
				done = t
			}
			i++
			continue
		}
		if len(stripe) == 1 {
			// The allocator found a single free plane; the page is already
			// consumed, so store it directly.
			f.stats.HostWrittenPages++
			t, err := f.storeAt(stripe[0], req.LPA+int64(i), secure, req.FileID, req.PageData(i), dep)
			if err != nil {
				return done, err
			}
			if t > done {
				done = t
			}
			i++
			continue
		}
		datas = datas[:0]
		for k := range stripe {
			datas = append(datas, req.PageData(i+k))
		}
		f.stats.HostWrittenPages += uint64(len(stripe))
		f.stats.FlashPrograms += uint64(len(stripe))
		f.stats.ProgramGroups++
		f.stats.GroupedPrograms += uint64(len(stripe))
		gdone, errs := f.batchTarget.ProgramGroup(stripe, datas, dep)
		if gdone > done {
			done = gdone
		}
		// Commit every successful page before touching recovery or GC:
		// commitWrite has no reentrant paths, so the whole stripe becomes
		// visible atomically with respect to fault handling (a reentrant
		// flush must never observe a chip-programmed page that the mapping
		// tables still call free — bLock escalation would seal it).
		// Coordinator fast path: a fully-successful stripe is stamped as
		// one group — the sequence numbers are pre-assigned in stripe
		// order, value-for-value what the per-page stamps inside
		// commitWrite would have written, but a deferred target posts one
		// record per stripe instead of one per page. Any per-page failure
		// falls back to the per-page stamps.
		allOK := true
		for k := range stripe {
			if errs[k] != nil {
				allOK = false
				break
			}
		}
		if allOK && f.groupMetaWriter != nil {
			seq0 := f.writeSeq + 1
			f.writeSeq += uint64(len(stripe))
			f.groupMetaWriter.WriteMetaGroup(stripe, req.LPA+int64(i), seq0, secure)
			f.stampSuppressed = true
		}
		olds := f.stripeOlds[:0]
		for k, p := range stripe {
			lpa := req.LPA + int64(i+k)
			olds = append(olds, f.l2p[lpa])
			if errs[k] == nil {
				f.commitWrite(p, lpa, secure, req.FileID)
			}
		}
		f.stampSuppressed = false
		f.stripeOlds = olds
		for k, p := range stripe {
			lpa := req.LPA + int64(i+k)
			if errs[k] != nil {
				// The consumed page holds a partial payload: quarantine it
				// and retry this logical page on a fresh single page
				// (storeAt re-reads the — still uncommitted — old mapping
				// and invalidates it itself).
				f.quarantineFailedProgram(p, secure, req.FileID, gdone)
				f.stats.ProgramRetries++
				np, err := f.allocate()
				if err != nil {
					return done, err
				}
				t, err := f.storeAt(np, lpa, secure, req.FileID, req.PageData(i+k), gdone)
				if err != nil {
					return done, err
				}
				if t > done {
					done = t
				}
				continue
			}
			// Invalidate the overwritten copy now that the new data (and
			// the rest of the stripe) is durable and mapped.
			if old := f.stripeOlds[k]; old != NoPPA {
				f.invalidate(old)
			}
		}
		f.maybeGC(f.geo.ChipOf(stripe[0]))
		i += len(stripe)
	}
	return done, nil
}

// invalidate transitions a live physical page to stale and routes it
// through the sanitization policy ( 1 – 4 in Fig. 13).
func (f *FTL) invalidate(p PPA) {
	st := f.status[p]
	if !st.Live() {
		return
	}
	f.liveInBlock[f.geo.BlockOf(p)]--
	f.p2l[p] = -1
	if f.hooks.Invalidated != nil {
		f.hooks.Invalidated(p, f.fileOf[p])
	}
	if f.traceOn {
		f.tracer.Invalidated(uint32(p), st == PageSecured, f.reqStart)
	}
	f.policy.Invalidate(f, p, st == PageSecured)
}

// --- primitives exposed to sanitization policies -----------------------

// MarkInvalid finalizes the status-table transition to invalid.
func (f *FTL) MarkInvalid(p PPA) { f.setStatus(p, PageInvalid) }

// IssuePLock emits a pLock for the page and marks it invalid. The lock
// occupies the chip but does not gate the host request's completion: the
// lock manager overlaps locks with foreground work (the status table is
// updated synchronously, so the FTL's security state is immediate).
//
// A failed pLock cannot be retried — the one-shot pulse spent the flag
// cells' single program opportunity — so it escalates to a bLock of the
// whole block (relocating any live pages out first).
func (f *FTL) IssuePLock(p PPA) {
	block := f.geo.BlockOf(p)
	if f.lockedBlocks[block] || f.retired[block] {
		// An earlier escalation or retirement already destroyed every
		// stale page of this block, this one included.
		return
	}
	if f.status[p] != PageInvalid {
		// The stale copy no longer exists: an erase or retirement got to
		// the block first (e.g. a reentrant GC flush while this batch was
		// being drained) and the page may even hold new data. Locking it
		// would destroy a free or live page.
		return
	}
	f.stats.PLocks++
	done, err := f.target.PLock(p, f.reqStart)
	if err != nil {
		f.stats.PLockFailures++
		f.markFault(trace.OpPLockFail, block, f.geo.PageInBlock(p), done)
		f.escalateToBLock(block)
		return
	}
	f.setStatus(p, PageInvalid)
	if f.hooks.Destroyed != nil {
		f.hooks.Destroyed(p, f.fileOf[p])
	}
	if f.traceOn {
		f.tracer.Audit(audit.Event{Kind: audit.KindDestroy, Page: uint32(p), Src: audit.NoSrc,
			LPA: -1, Cause: audit.CausePLock, Dep: f.reqStart, At: done, Ladder: f.ladderDepth > 0})
	}
}

// IssueBLock emits a bLock covering every stale page of the block; the
// given pages are marked invalid. A failed bLock falls back to forced
// copy-out + erase — the block is fully stale here (the §6 decision
// rule's precondition), so the "copy-out" part is already satisfied and
// the erase destroys the data instead (retiring the block if the erase
// fails too).
func (f *FTL) IssueBLock(block int, pages []PPA) {
	if f.lockedBlocks[block] || f.retired[block] {
		return
	}
	// Keep only the pages whose stale copy still exists. A reentrant
	// flush (GC triggered by a relocation) may have erased the block —
	// and the allocator may have reopened it — after this batch was
	// drained; locking a free or refilled block would brick live pages.
	stale := make([]PPA, 0, len(pages))
	for _, p := range pages {
		if f.status[p] == PageInvalid {
			stale = append(stale, p)
		}
	}
	if len(stale) == 0 {
		return
	}
	if !f.BlockFullyStale(block) {
		for _, p := range stale {
			f.IssuePLock(p)
		}
		return
	}
	f.stats.BLocks++
	done, err := f.target.BLock(block, f.reqStart)
	if err != nil {
		f.stats.BLockFailures++
		f.markFault(trace.OpBLockFail, block, -1, done)
		f.recoveryErase(block)
		return
	}
	f.lockedBlocks[block] = true
	// The bLock disables the whole block, not just the pages this batch
	// asked for: evacuation-stale copies (relocatePage with sanitizeOld
	// off marks them invalid without pending them) die with it too, so
	// destruction is reported block-wide — otherwise their hooks and
	// audit windows would never close.
	f.destroyStale(block, done, audit.CauseBLock, f.reqStart)
}

// IssueScrub destroys a page's wordline in place (scrSSD baseline).
// Scrubbing merges the Vth states of the whole wordline, so every stale
// page sharing it is destroyed along with the target; callers must have
// relocated the live siblings first. If the wordline is still open (the
// block's write frontier sits inside it), its free slots are wasted: the
// scrub pulse programs them to garbage, so the allocator skips past the
// wordline — a real cost of scrubbing the write frontier.
func (f *FTL) IssueScrub(p PPA) {
	f.stats.Scrubs++
	done := f.target.Scrub(p, f.reqStart)
	siblings := f.geo.WLSiblings(p)
	block := f.geo.BlockOf(p)
	cs := &f.chips[f.geo.ChipOfBlock(block)]
	pl := f.geo.PlaneOfBlock(block)
	wlStart := int(siblings[0]) - int(f.geo.FirstPPA(block))
	wlEnd := wlStart + len(siblings)
	if cs.active[pl] == block && cs.frontier[pl] > wlStart && cs.frontier[pl] < wlEnd {
		f.usedInBlock[block] += int32(wlEnd - cs.frontier[pl])
		cs.frontier[pl] = wlEnd
	}
	for _, s := range siblings {
		if s != p && f.status[s].Live() {
			panic(fmt.Sprintf("ftl: scrubbing wordline of page %d would destroy live page %d", p, s))
		}
		f.setStatus(s, PageInvalid)
		if f.hooks.Destroyed != nil {
			f.hooks.Destroyed(s, f.fileOf[s])
		}
		if f.traceOn {
			f.tracer.Audit(audit.Event{Kind: audit.KindDestroy, Page: uint32(s), Src: audit.NoSrc,
				LPA: -1, Cause: audit.CauseScrub, Dep: f.reqStart, At: done, Ladder: f.ladderDepth > 0})
		}
	}
}

// PendSanitize queues a secured page for the lock manager's batched
// decision at Flush time (secSSD policies).
func (f *FTL) PendSanitize(p PPA) {
	b := f.geo.BlockOf(p)
	if f.pendingPages[b] == nil {
		// The list may already carry a stale entry for b (from an erase
		// that cancelled the block's queue); DrainPending dedupes on the
		// nil check, so appending again is harmless.
		f.pendingList = append(f.pendingList, b)
	}
	f.pendingPages[b] = append(f.pendingPages[b], p)
	f.pendingCount++
}

// clearPending drops a block's queued sanitize work (erase or retirement
// destroyed the stale copies already). The pendingList entry is left for
// DrainPending to skip.
func (f *FTL) clearPending(block int) {
	if ps := f.pendingPages[block]; ps != nil {
		f.pendingCount -= len(ps)
		f.pendingPages[block] = nil
	}
}

// PendingBlock is one block's queued secured invalidations.
type PendingBlock struct {
	Block int
	Pages []PPA // in invalidation order
}

// DrainPending returns and clears the pending sanitize sets, ordered by
// block index. The deterministic order matters: policies issue lock and
// erase commands while iterating, and unordered iteration would make
// simulated timing vary run to run. Ownership of each Pages slice moves
// to the caller; the drain must allocate a fresh result because policies
// iterate it while relocations can reentrantly queue and drain more work.
func (f *FTL) DrainPending() []PendingBlock {
	if f.pendingCount == 0 {
		f.pendingList = f.pendingList[:0]
		return nil
	}
	slices.Sort(f.pendingList)
	out := make([]PendingBlock, 0, len(f.pendingList))
	for _, b := range f.pendingList {
		pages := f.pendingPages[b]
		if pages == nil {
			// Cancelled by an erase/retirement, or a duplicate list entry.
			continue
		}
		f.pendingPages[b] = nil
		out = append(out, PendingBlock{Block: b, Pages: pages})
	}
	f.pendingList = f.pendingList[:0]
	f.pendingCount = 0
	return out
}

// BlockFullyStale reports whether no live pages remain in the block and
// the block has been fully written (so bLock sanitizes only stale data
// and no future program will target it before erase).
func (f *FTL) BlockFullyStale(block int) bool {
	return f.liveInBlock[block] == 0 &&
		int(f.usedInBlock[block]) == f.geo.PagesPerBlock
}

// LiveInBlock reports how many live pages the block currently holds.
func (f *FTL) LiveInBlock(block int) int { return int(f.liveInBlock[block]) }

// LockTiming exposes the configured pLock/bLock latencies to policies.
func (f *FTL) LockTiming() LockTiming { return f.cfg.Timing }

// RelocateLive moves every live page out of the block (read + program
// elsewhere), remapping L2P. The old copies are NOT routed through the
// sanitization policy — callers destroy the whole block right after
// (erSSD) — but are reported stale to hooks. Returns the number moved.
func (f *FTL) RelocateLive(block int) int {
	moved := 0
	first := f.geo.FirstPPA(block)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		p := first + PPA(i)
		if !f.status[p].Live() {
			continue
		}
		f.relocatePage(p, false)
		moved++
	}
	f.stats.SanitizeCopies += uint64(moved)
	return moved
}

// RelocateWLSiblings moves the live pages that share p's wordline
// (excluding p itself) so the wordline can be scrubbed (scrSSD). Returns
// the number moved.
func (f *FTL) RelocateWLSiblings(p PPA) int {
	moved := 0
	for _, s := range f.geo.WLSiblings(p) {
		if s == p || !f.status[s].Live() {
			continue
		}
		f.relocatePage(s, false)
		moved++
	}
	f.stats.SanitizeCopies += uint64(moved)
	return moved
}

// relocatePage copies one live page to a fresh location on the same chip.
// When sanitizeOld is true the stale copy goes through the policy
// (GC path); otherwise it is only marked stale (caller destroys it).
func (f *FTL) relocatePage(p PPA, sanitizeOld bool) {
	lpa := f.p2l[p]
	st := f.status[p]
	file := f.fileOf[p]

	np, err := f.allocateOnChip(f.geo.ChipOf(p))
	if err != nil {
		// Fall back to any chip; running truly out of space is a
		// configuration error surfaced by allocate's panic path.
		np = f.mustAllocate()
	}
	var progDone sim.Micros
	retries := 0
	for {
		f.stats.FlashReads++
		f.stats.FlashPrograms++
		f.stats.GCCopies++
		var perr error
		if !f.cfg.NoCopyback && f.geo.ChipOf(np) == f.geo.ChipOf(p) {
			// Same-chip move: the copyback command skips the bus transfers.
			f.stats.Copybacks++
			progDone, perr = f.target.Copyback(p, np, f.reqClock)
		} else {
			data, readDone := f.target.Read(p, f.reqClock)
			progDone, perr = f.target.Program(np, data, readDone)
		}
		if perr == nil {
			break
		}
		// The destination was consumed by the failed program; quarantine
		// it and retry the whole move on a fresh page (the source is
		// still intact and mapped).
		f.quarantineFailedProgram(np, st == PageSecured, file, progDone)
		if retries+1 >= maxProgramAttempts {
			panic(fmt.Sprintf("ftl: relocation of page %d failed %d times: %v", p, retries+1, perr))
		}
		retries++
		f.stats.ProgramRetries++
		if progDone > f.reqClock {
			f.reqClock = progDone
		}
		np, err = f.allocateOnChip(f.geo.ChipOf(p))
		if err != nil {
			np = f.mustAllocate()
		}
	}
	if retries > 0 {
		f.retryDepth.Add(float64(retries))
	}
	if progDone > f.reqClock {
		f.reqClock = progDone
	}

	// Remap.
	f.stampMeta(np, lpa, st == PageSecured)
	if lpa >= 0 {
		f.l2p[lpa] = np
	}
	f.p2l[np] = lpa
	f.fileOf[np] = file
	f.setStatus(np, st)
	f.liveInBlock[f.geo.BlockOf(np)]++
	if f.hooks.Programmed != nil {
		f.hooks.Programmed(np, lpa, file)
	}
	if st == PageSecured && f.traceOn {
		origin := audit.OriginEvacuate
		if sanitizeOld {
			origin = audit.OriginGC
		}
		f.tracer.Audit(audit.Event{Kind: audit.KindCopy, Page: uint32(np), Src: uint32(p),
			LPA: lpa, Origin: origin, At: f.reqClock})
	}

	// Retire the old copy.
	f.liveInBlock[f.geo.BlockOf(p)]--
	f.p2l[p] = -1
	if f.hooks.Invalidated != nil {
		f.hooks.Invalidated(p, f.fileOf[p])
	}
	if f.traceOn {
		f.tracer.Invalidated(uint32(p), st == PageSecured, f.reqClock)
	}
	if sanitizeOld {
		f.policy.Invalidate(f, p, st == PageSecured)
	} else {
		f.setStatus(p, PageInvalid)
	}
	// Sanitization-driven relocations (erSSD evacuations, scrSSD sibling
	// moves) consume free pages outside the host-write path; keep the
	// free-block floor here too. maybeGC is a no-op during GC itself.
	f.maybeGC(f.geo.ChipOf(np))
}

// EraseNow erases a block immediately (erSSD and the eager-erase
// ablation). Every page becomes free and its stale data is destroyed.
// The block moves to the free list (and off the lazy-erase queue, where
// GC may already have parked it) — unless the erase failed, in which
// case eraseBlock retired the block and it joins no list.
func (f *FTL) EraseNow(block int) {
	cs := &f.chips[f.geo.ChipOfBlock(block)]
	if f.retired[block] || f.freeContains(cs, block) {
		// Already retired, or already erased and freed (a reentrant flush
		// from a relocation-triggered GC got here first): nothing stale
		// remains to destroy, and a second free-list entry would let the
		// allocator open the block twice.
		return
	}
	ok := f.eraseBlock(block)
	if pl := f.geo.PlaneOfBlock(block); cs.active[pl] == block {
		cs.active[pl] = -1
		cs.frontier[pl] = 0
	}
	for i, b := range cs.pendingErase {
		if b == block {
			cs.pendingErase = append(cs.pendingErase[:i], cs.pendingErase[i+1:]...)
			break
		}
	}
	if ok {
		cs.free = append(cs.free, block)
	}
}

// eraseBlock issues the erase and reconciles the status table. It
// reports false when the erase failed: the block is then retired (with
// its stale data scrubbed) instead of becoming free.
func (f *FTL) eraseBlock(block int) bool {
	f.stats.Erases++
	issued := f.reqClock
	eraseDone, eerr := f.target.Erase(block, f.reqClock)
	if eraseDone > f.reqClock {
		f.reqClock = eraseDone
	}
	if eerr != nil {
		f.stats.EraseFailures++
		f.markFault(trace.OpEraseFail, block, -1, eraseDone)
		f.retireBlock(block, eraseDone)
		return false
	}
	first := f.geo.FirstPPA(block)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		p := first + PPA(i)
		if f.status[p].Live() {
			panic(fmt.Sprintf("ftl: erasing block %d with live page %d", block, p))
		}
		if f.status[p] == PageInvalid {
			if f.hooks.Destroyed != nil {
				f.hooks.Destroyed(p, f.fileOf[p])
			}
			if f.traceOn {
				f.tracer.Audit(audit.Event{Kind: audit.KindDestroy, Page: uint32(p), Src: audit.NoSrc,
					LPA: -1, Cause: audit.CauseErase, Dep: issued, At: eraseDone, Ladder: f.ladderDepth > 0})
			}
		}
		f.setStatus(p, PageFree)
		f.p2l[p] = -1
		f.fileOf[p] = 0
	}
	f.liveInBlock[block] = 0
	f.usedInBlock[block] = 0
	f.eraseCount[block]++
	f.lockedBlocks[block] = false
	f.clearPending(block)
	f.cancelQueuedLocks(block)
	return true
}

// WearStats summarizes per-block erase counts.
type WearStats struct {
	Min, Max int32
	Mean     float64
	// Spread is Max - Min, the imbalance dynamic wear leveling bounds.
	Spread int32
}

// Wear returns the device's erase-count statistics.
func (f *FTL) Wear() WearStats {
	w := WearStats{Min: 1 << 30}
	var sum int64
	for _, c := range f.eraseCount {
		if c < w.Min {
			w.Min = c
		}
		if c > w.Max {
			w.Max = c
		}
		sum += int64(c)
	}
	if len(f.eraseCount) > 0 {
		w.Mean = float64(sum) / float64(len(f.eraseCount))
	}
	if w.Min == 1<<30 {
		w.Min = 0
	}
	w.Spread = w.Max - w.Min
	return w
}
