package ftl_test

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/ftl"
	"repro/internal/ftl/ftltest"
	"repro/internal/sanitize"
)

// Example shows the §6 flow at the FTL level: a secured write, its
// overwrite, and the lock command the invalidation produces.
func Example() {
	target := ftltest.New(ftltest.SmallGeometry())
	f, err := ftl.New(ftltest.SmallConfig(), target, sanitize.SecSSD())
	if err != nil {
		panic(err)
	}
	// A default (secured) write, then an overwrite of the same LPA.
	f.Submit(blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 1}, 0)
	old := f.Lookup(0)
	f.Submit(blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 1}, 0)

	fmt.Printf("old copy status: %v\n", f.Status(old))
	fmt.Printf("pLocks issued: %d\n", f.Stats().PLocks)
	fmt.Printf("copies needed: %d\n", f.Stats().SanitizeCopies)
	// Output:
	// old copy status: invalid
	// pLocks issued: 1
	// copies needed: 0
}
