package ftl_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/blockio"
	"repro/internal/ftl"
	"repro/internal/ftl/ftltest"
	"repro/internal/sanitize"
)

func newFTL(t *testing.T, policy ftl.Policy) (*ftl.FTL, *ftltest.CountingTarget) {
	t.Helper()
	tgt := ftltest.New(ftltest.SmallGeometry())
	f, err := ftl.New(ftltest.SmallConfig(), tgt, policy)
	if err != nil {
		t.Fatal(err)
	}
	return f, tgt
}

func write(t *testing.T, f *ftl.FTL, lpa int64, pages int32, insecure bool) {
	t.Helper()
	_, err := f.Submit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: pages, Insecure: insecure}, 0)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGeometryHelpers(t *testing.T) {
	g := ftltest.SmallGeometry()
	p := g.PPAOf(1, 2, 5)
	if g.ChipOf(p) != 1 {
		t.Fatalf("ChipOf = %d", g.ChipOf(p))
	}
	if g.BlockOf(p) != 1*8+2 {
		t.Fatalf("BlockOf = %d", g.BlockOf(p))
	}
	if g.BlockInChip(g.BlockOf(p)) != 2 {
		t.Fatal("BlockInChip wrong")
	}
	if g.PageInBlock(p) != 5 {
		t.Fatalf("PageInBlock = %d", g.PageInBlock(p))
	}
	sibs := g.WLSiblings(p)
	if len(sibs) != 3 {
		t.Fatalf("WLSiblings len %d", len(sibs))
	}
	// Page 5 is in WL1 (pages 3,4,5).
	if g.PageInBlock(sibs[0]) != 3 || g.PageInBlock(sibs[2]) != 5 {
		t.Fatalf("WLSiblings = %v", sibs)
	}
	for _, s := range sibs {
		if g.BlockOf(s) != g.BlockOf(p) {
			t.Fatal("sibling crossed a block boundary")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	good := ftltest.SmallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	noOP := good
	noOP.LogicalPages = good.Geometry.TotalPages()
	if err := noOP.Validate(); err == nil {
		t.Fatal("config without over-provisioning accepted")
	}
	badGC := good
	badGC.GCFreeBlocksLow = 0
	if err := badGC.Validate(); err == nil {
		t.Fatal("GCFreeBlocksLow=0 accepted")
	}
	if _, err := ftl.New(badGC, ftltest.New(good.Geometry), sanitize.Baseline()); err == nil {
		t.Fatal("New accepted bad config")
	}
	if _, err := ftl.New(good, nil, sanitize.Baseline()); err == nil {
		t.Fatal("New accepted nil target")
	}
}

func TestWriteMapsAndReadsBack(t *testing.T) {
	f, tgt := newFTL(t, sanitize.Baseline())
	write(t, f, 3, 2, false)
	if f.Lookup(3) == ftl.NoPPA || f.Lookup(4) == ftl.NoPPA {
		t.Fatal("written pages unmapped")
	}
	if f.Status(f.Lookup(3)) != ftl.PageSecured {
		t.Fatal("default write should be secured (backward-compatible security)")
	}
	done, err := f.Submit(blockio.Request{Op: blockio.OpRead, LPA: 3, Pages: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Reads != 2 {
		t.Fatalf("FlashReads = %d, want 2", tgt.Reads)
	}
	if done <= 0 {
		t.Fatal("read must take time")
	}
	st := f.Stats()
	if st.HostReadPages != 2 || st.HostWrittenPages != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInsecureWriteIsValidNotSecured(t *testing.T) {
	f, _ := newFTL(t, sanitize.Baseline())
	write(t, f, 0, 1, true)
	if f.Status(f.Lookup(0)) != ftl.PageValid {
		t.Fatal("O_INSEC write should be valid, not secured")
	}
}

func TestReadOfUnmappedPageTouchesNoFlash(t *testing.T) {
	f, tgt := newFTL(t, sanitize.Baseline())
	if _, err := f.Submit(blockio.Request{Op: blockio.OpRead, LPA: 0, Pages: 4}, 0); err != nil {
		t.Fatal(err)
	}
	if tgt.Reads != 0 {
		t.Fatal("unmapped read reached flash")
	}
}

func TestRequestBeyondCapacityRejected(t *testing.T) {
	f, _ := newFTL(t, sanitize.Baseline())
	req := blockio.Request{Op: blockio.OpWrite, LPA: int64(f.LogicalPages()) - 1, Pages: 2}
	if _, err := f.Submit(req, 0); err == nil {
		t.Fatal("overflow write accepted")
	}
	if _, err := f.Submit(blockio.Request{Op: blockio.OpWrite, LPA: 0, Pages: 0}, 0); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestOverwriteInvalidatesOldCopy(t *testing.T) {
	f, _ := newFTL(t, sanitize.Baseline())
	write(t, f, 0, 1, true)
	old := f.Lookup(0)
	write(t, f, 0, 1, true)
	if f.Lookup(0) == old {
		t.Fatal("overwrite must use a new physical page (append-only FTL)")
	}
	if f.Status(old) != ftl.PageInvalid {
		t.Fatalf("old copy status %v, want invalid", f.Status(old))
	}
}

func TestTrimUnmapsAndInvalidates(t *testing.T) {
	f, _ := newFTL(t, sanitize.Baseline())
	write(t, f, 5, 3, true)
	old := f.Lookup(5)
	if _, err := f.Submit(blockio.Request{Op: blockio.OpTrim, LPA: 5, Pages: 3}, 0); err != nil {
		t.Fatal(err)
	}
	if f.Lookup(5) != ftl.NoPPA {
		t.Fatal("trim must unmap")
	}
	if f.Status(old) != ftl.PageInvalid {
		t.Fatal("trim must invalidate the physical page")
	}
	if f.Stats().HostTrimmedPages != 3 {
		t.Fatal("trim accounting wrong")
	}
}

func TestTrimOfUnmappedIsNoop(t *testing.T) {
	f, _ := newFTL(t, sanitize.Baseline())
	if _, err := f.Submit(blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 10}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestWritesStripeAcrossChips(t *testing.T) {
	f, _ := newFTL(t, sanitize.Baseline())
	write(t, f, 0, 8, true)
	chips := map[int]int{}
	g := f.Geometry()
	for lpa := int64(0); lpa < 8; lpa++ {
		chips[g.ChipOf(f.Lookup(lpa))]++
	}
	if len(chips) != 2 {
		t.Fatalf("writes used %d chips, want 2 (striping)", len(chips))
	}
}

// Fill the device past its logical capacity several times over: GC must
// reclaim space and the FTL must never fail or lose mappings.
func TestGCReclaimsUnderSteadyState(t *testing.T) {
	f, tgt := newFTL(t, sanitize.Baseline())
	logical := int64(f.LogicalPages())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < int(logical)*6; i++ {
		lpa := rng.Int63n(logical)
		write(t, f, lpa, 1, true)
	}
	st := f.Stats()
	if st.GCRuns == 0 {
		t.Fatal("GC never ran despite 6x overwrite")
	}
	if tgt.Erases == 0 {
		t.Fatal("no blocks were erased")
	}
	if st.WAF() <= 1.0 {
		t.Fatalf("WAF = %.3f, must exceed 1 once GC copies pages", st.WAF())
	}
	if st.WAF() > 3.0 {
		t.Fatalf("WAF = %.3f suspiciously high for 50%% utilization", st.WAF())
	}
	// Every logical page that was written still resolves.
	seen := map[ftl.PPA]bool{}
	for lpa := int64(0); lpa < logical; lpa++ {
		p := f.Lookup(lpa)
		if p == ftl.NoPPA {
			continue
		}
		if seen[p] {
			t.Fatalf("two logical pages map to physical page %d", p)
		}
		seen[p] = true
		if !f.Status(p).Live() {
			t.Fatalf("mapped page %d has status %v", p, f.Status(p))
		}
	}
}

func TestLazyEraseDefersUntilReuse(t *testing.T) {
	f, tgt := newFTL(t, sanitize.Baseline())
	logical := int64(f.LogicalPages())
	// One full overwrite pass fills blocks; a second forces GC.
	for pass := 0; pass < 2; pass++ {
		for lpa := int64(0); lpa < logical; lpa++ {
			write(t, f, lpa, 1, true)
		}
	}
	st := f.Stats()
	if st.GCRuns == 0 {
		t.Fatal("expected GC activity")
	}
	// Lazy erase: erases happen only when a pending block is reopened, so
	// erases <= GC runs (a few pending blocks may still await erase).
	if tgt.Erases > st.GCRuns {
		t.Fatalf("erases (%d) exceeded GC runs (%d) under lazy erase", tgt.Erases, st.GCRuns)
	}
}

func TestEagerEraseAblation(t *testing.T) {
	cfg := ftltest.SmallConfig()
	cfg.EagerErase = true
	tgt := ftltest.New(cfg.Geometry)
	f, err := ftl.New(cfg, tgt, sanitize.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	logical := int64(f.LogicalPages())
	for pass := 0; pass < 3; pass++ {
		for lpa := int64(0); lpa < logical; lpa++ {
			if _, err := f.Submit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 1, Insecure: true}, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("expected GC")
	}
	if tgt.Erases != f.Stats().GCRuns {
		t.Fatalf("eager erase: erases (%d) should equal GC runs (%d)", tgt.Erases, f.Stats().GCRuns)
	}
}

// The FTL must uphold flash discipline (erase-before-program, in-order
// pages) — verified by mirroring every command onto real chip models,
// which panic on violations.
func TestFTLRespectsFlashDisciplineOnRealChips(t *testing.T) {
	f, _ := newFTLWithChips(t, sanitize.SecSSD())
	logical := int64(f.LogicalPages())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < int(logical)*5; i++ {
		op := rng.Intn(10)
		lpa := rng.Int63n(logical)
		var req blockio.Request
		switch {
		case op < 6:
			req = blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 1, Insecure: op%2 == 0}
		case op < 8:
			req = blockio.Request{Op: blockio.OpRead, LPA: lpa, Pages: 1}
		default:
			req = blockio.Request{Op: blockio.OpTrim, LPA: lpa, Pages: 1}
		}
		if _, err := f.Submit(req, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func newFTLWithChips(t *testing.T, policy ftl.Policy) (*ftl.FTL, *ftltest.CountingTarget) {
	t.Helper()
	geo := ftltest.SmallGeometry()
	tgt := ftltest.New(geo)
	chips := ftltest.BuildChips(t, geo)
	tgt.WithChips(chips)
	f, err := ftl.New(ftltest.SmallConfig(), tgt, policy)
	if err != nil {
		t.Fatal(err)
	}
	return f, tgt
}

func TestStatsWAF(t *testing.T) {
	var s ftl.Stats
	if s.WAF() != 0 {
		t.Fatal("WAF before writes should be 0")
	}
	s.HostWrittenPages = 10
	s.FlashPrograms = 25
	if s.WAF() != 2.5 {
		t.Fatalf("WAF = %v", s.WAF())
	}
}

func TestPageStatusStrings(t *testing.T) {
	for st, want := range map[ftl.PageStatus]string{
		ftl.PageFree:    "free",
		ftl.PageValid:   "valid",
		ftl.PageSecured: "secured",
		ftl.PageInvalid: "invalid",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
	if !strings.Contains(ftl.PageStatus(9).String(), "9") {
		t.Error("unknown status should print its value")
	}
}

// Property: after any random workload, the per-block live counts derived
// from the status table equal the number of mapped logical pages, and no
// two logical pages share a physical page.
func TestMappingConsistencyProperty(t *testing.T) {
	fn := func(seed int64, opsRaw []uint16) bool {
		tgt := ftltest.New(ftltest.SmallGeometry())
		f, err := ftl.New(ftltest.SmallConfig(), tgt, sanitize.SecSSD())
		if err != nil {
			return false
		}
		logical := int64(f.LogicalPages())
		rng := rand.New(rand.NewSource(seed))
		for range opsRaw {
			lpa := rng.Int63n(logical)
			var req blockio.Request
			switch rng.Intn(4) {
			case 0:
				req = blockio.Request{Op: blockio.OpTrim, LPA: lpa, Pages: 1}
			case 1:
				req = blockio.Request{Op: blockio.OpRead, LPA: lpa, Pages: 1}
			default:
				req = blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 1, Insecure: rng.Intn(2) == 0}
			}
			if _, err := f.Submit(req, 0); err != nil {
				return false
			}
		}
		// Check bijection between mapped LPAs and live PPAs.
		mapped := 0
		seen := map[ftl.PPA]bool{}
		for lpa := int64(0); lpa < logical; lpa++ {
			p := f.Lookup(lpa)
			if p == ftl.NoPPA {
				continue
			}
			if seen[p] || !f.Status(p).Live() {
				return false
			}
			seen[p] = true
			mapped++
		}
		// Every live physical page must be mapped by someone.
		live := 0
		for p := 0; p < f.Geometry().TotalPages(); p++ {
			if f.Status(ftl.PPA(p)).Live() {
				live++
			}
		}
		return live == mapped
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWearStatsTrackErases(t *testing.T) {
	f, _ := newFTL(t, sanitize.Baseline())
	logical := int64(f.LogicalPages())
	for pass := 0; pass < 4; pass++ {
		for lpa := int64(0); lpa < logical; lpa++ {
			write(t, f, lpa, 1, true)
		}
	}
	w := f.Wear()
	if w.Max == 0 {
		t.Fatal("no wear recorded despite heavy overwrites")
	}
	if w.Mean <= 0 || w.Min > w.Max {
		t.Fatalf("wear stats inconsistent: %+v", w)
	}
}

// Dynamic wear leveling should bound the erase-count spread more tightly
// than LIFO free-list reuse under a skewed workload.
func TestWearAwareReducesSpread(t *testing.T) {
	run := func(wearAware bool) ftl.WearStats {
		cfg := ftltest.SmallConfig()
		cfg.WearAware = wearAware
		tgt := ftltest.New(cfg.Geometry)
		f, err := ftl.New(cfg, tgt, sanitize.Baseline())
		if err != nil {
			t.Fatal(err)
		}
		// Skewed: hammer a tiny hot set so the same few blocks churn.
		rng := rand.New(rand.NewSource(8))
		hot := int64(8)
		for i := 0; i < 6000; i++ {
			lpa := rng.Int63n(hot)
			if rng.Intn(10) == 0 {
				lpa = hot + rng.Int63n(int64(f.LogicalPages())-hot)
			}
			if _, err := f.Submit(blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: 1, Insecure: true}, 0); err != nil {
				t.Fatal(err)
			}
		}
		return f.Wear()
	}
	lifo := run(false)
	wa := run(true)
	if wa.Spread > lifo.Spread {
		t.Fatalf("wear-aware spread %d worse than LIFO %d", wa.Spread, lifo.Spread)
	}
	t.Logf("erase spread: LIFO=%d wear-aware=%d (max %d vs %d)", lifo.Spread, wa.Spread, lifo.Max, wa.Max)
}

// Scrubbing a wordline at the write frontier must waste its free slots:
// the allocator skips them and the chip never sees an out-of-order
// program.
func TestScrubOpenWordlineSkipsFrontier(t *testing.T) {
	f, tgt := newFTLWithChips(t, sanitize.ScrSSD())
	// Write one page: it lands on WL0 slot0 of some chip; the WL has two
	// free slots left.
	write(t, f, 0, 1, false)
	used := f.Lookup(0)
	// Trim it: scrSSD scrubs the open WL.
	if _, err := f.Submit(blockio.Request{Op: blockio.OpTrim, LPA: 0, Pages: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if tgt.Scrubs == 0 {
		t.Fatal("expected a scrub")
	}
	// The two sibling slots must now be invalid (wasted), not free.
	for _, s := range f.Geometry().WLSiblings(used) {
		if f.Status(s) != ftl.PageInvalid {
			t.Fatalf("page %d status %v after open-WL scrub, want invalid", s, f.Status(s))
		}
	}
	// Subsequent writes must keep working (chip panics on discipline
	// violations through the mirrored chips).
	for i := int64(1); i < 20; i++ {
		write(t, f, i, 1, false)
	}
}

// erSSD during GC: the victim may be erased by the policy mid-collection;
// the allocator must never double-track it. Exercised heavily under churn
// with the real chip models attached (they panic on double programming).
func TestErSSDGCInteractionNoDoubleTracking(t *testing.T) {
	f, _ := newFTLWithChips(t, sanitize.ErSSD())
	logical := int64(f.LogicalPages())
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < int(logical)*6; i++ {
		lpa := rng.Int63n(logical)
		op := blockio.OpWrite
		if rng.Intn(5) == 0 {
			op = blockio.OpTrim
		}
		if _, err := f.Submit(blockio.Request{Op: op, LPA: lpa, Pages: 1, Insecure: rng.Intn(3) == 0}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().Erases == 0 {
		t.Fatal("erSSD never erased")
	}
	// Free-block accounting stayed consistent.
	if f.FreeBlocks() < 0 || f.FreeBlocks() > f.Geometry().TotalBlocks() {
		t.Fatalf("free blocks %d out of range", f.FreeBlocks())
	}
}

func TestVictimFIFOStillReclaims(t *testing.T) {
	cfg := ftltest.SmallConfig()
	cfg.Victim = ftl.VictimFIFO
	tgt := ftltest.New(cfg.Geometry)
	f, err := ftl.New(cfg, tgt, sanitize.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	logical := int64(f.LogicalPages())
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < int(logical)*6; i++ {
		if _, err := f.Submit(blockio.Request{Op: blockio.OpWrite, LPA: rng.Int63n(logical), Pages: 1, Insecure: true}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().GCRuns == 0 || tgt.Erases == 0 {
		t.Fatal("FIFO victim policy failed to reclaim")
	}
	// FIFO moves more live data than greedy on the same workload.
	gcfg := ftltest.SmallConfig()
	gtgt := ftltest.New(gcfg.Geometry)
	gf, _ := ftl.New(gcfg, gtgt, sanitize.Baseline())
	grng := rand.New(rand.NewSource(18))
	for i := 0; i < int(logical)*6; i++ {
		if _, err := gf.Submit(blockio.Request{Op: blockio.OpWrite, LPA: grng.Int63n(logical), Pages: 1, Insecure: true}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().GCCopies < gf.Stats().GCCopies {
		t.Fatalf("FIFO copied less (%d) than greedy (%d)?", f.Stats().GCCopies, gf.Stats().GCCopies)
	}
}

func TestHooksAndPolicyName(t *testing.T) {
	f, _ := newFTL(t, sanitize.SecSSD())
	if f.PolicyName() != "secSSD" {
		t.Fatalf("PolicyName = %q", f.PolicyName())
	}
	var programmed, invalidated, destroyed int
	f.SetHooks(ftl.Hooks{
		Programmed:  func(ftl.PPA, int64, uint64) { programmed++ },
		Invalidated: func(ftl.PPA, uint64) { invalidated++ },
		Destroyed:   func(ftl.PPA, uint64) { destroyed++ },
	})
	write(t, f, 0, 1, false)
	write(t, f, 0, 1, false) // overwrite: invalidate + pLock (destroy)
	if programmed != 2 || invalidated != 1 || destroyed != 1 {
		t.Fatalf("hooks: prog=%d inval=%d destr=%d", programmed, invalidated, destroyed)
	}
	// Out-of-range lookups are safe.
	if f.Lookup(-1) != ftl.NoPPA || f.Lookup(1<<40) != ftl.NoPPA {
		t.Fatal("out-of-range Lookup should be NoPPA")
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []ftl.Geometry{
		{Chips: 0, BlocksPerChip: 1, PagesPerBlock: 3, PagesPerWL: 3},
		{Chips: 1, BlocksPerChip: 1, PagesPerBlock: 4, PagesPerWL: 3}, // not a multiple
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
