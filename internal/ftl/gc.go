package ftl

import "repro/internal/trace"

// maybeGC runs garbage collection on the chip while its reusable-block
// count sits below the configured low-water mark.
func (f *FTL) maybeGC(chip int) {
	if f.inGC {
		return // relocations during GC must not recurse into GC
	}
	for f.reusableBlocks(chip) < f.cfg.GCFreeBlocksLow {
		if !f.gcOnce(chip) {
			return
		}
	}
}

// gcOnce collects one victim block on the chip. It returns false when no
// victim exists (every candidate is the active block or still erased).
//
// Flow (§2.2 + §6): pick the fully-written block with the fewest live
// pages, copy those pages out (each stale copy goes through the
// sanitization policy, which is where GC-triggered pLock/bLock comes
// from — Fig. 13 step 1 "copy"), flush the lock manager, then queue the
// block for lazy erase (or erase eagerly under the ablation config).
func (f *FTL) gcOnce(chip int) bool {
	victim := f.pickVictim(chip)
	if victim < 0 {
		return false
	}
	f.stats.GCRuns++
	f.inGC = true
	gcStart := f.reqClock
	first := f.geo.FirstPPA(victim)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		p := first + PPA(i)
		if f.status[p].Live() {
			f.relocatePage(p, true)
		}
	}
	// Let the lock manager batch the secured stale copies: with the
	// whole victim now stale this is the prime bLock opportunity.
	eraseEpoch := f.eraseCount[victim]
	f.policy.Flush(f)
	f.inGC = false
	if f.traceOn {
		f.tracer.Op(trace.Event{
			Class: trace.OpGC, Start: gcStart, End: f.reqClock, Queued: gcStart,
			Chip: chip, Channel: -1, Block: victim, Page: -1, LPA: -1,
		})
	}

	// A sanitization policy may have erased the victim during Flush
	// (erSSD) — it is then on the free list, reopened as the active block,
	// or even fully refilled with live data and closed again. The erase
	// count is the reliable tell (the victim cannot acquire new data
	// without an erase first); requeueing after any of these would destroy
	// live pages or double-free the block.
	cs := &f.chips[chip]
	if f.eraseCount[victim] != eraseEpoch || f.retired[victim] ||
		f.usedInBlock[victim] == 0 || f.isActive(cs, victim) || f.freeContains(cs, victim) {
		return true
	}
	if f.cfg.EagerErase {
		// A failed erase retires the victim; only a successful one frees it.
		if f.eraseBlock(victim) {
			cs.free = append(cs.free, victim)
		}
	} else {
		cs.pendingErase = append(cs.pendingErase, victim)
	}
	return true
}

// pickVictim returns the next GC victim on the chip, or -1 when none
// qualifies. Only fully-written blocks are eligible: a partially written
// block is either active or about to be.
//
// Greedy (default) picks the block with the fewest live pages; FIFO (the
// ablation) picks the oldest eligible block by the chip's round-robin
// cursor, which is what a naive circular-log FTL would do.
func (f *FTL) pickVictim(chip int) int {
	cs := &f.chips[chip]
	begin := chip * f.geo.BlocksPerChip
	eligible := func(b int) bool {
		return !f.isActive(cs, b) && !f.retired[b] &&
			int(f.usedInBlock[b]) == f.geo.PagesPerBlock &&
			!f.pendingEraseContains(cs, b)
	}
	if f.cfg.Victim == VictimFIFO {
		for i := 0; i < f.geo.BlocksPerChip; i++ {
			b := begin + (cs.fifoCursor+i)%f.geo.BlocksPerChip
			if eligible(b) && int(f.liveInBlock[b]) < f.geo.PagesPerBlock {
				cs.fifoCursor = (b - begin + 1) % f.geo.BlocksPerChip
				return b
			}
		}
		return -1
	}
	best, bestLive := -1, int32(1<<30)
	for b := begin; b < begin+f.geo.BlocksPerChip; b++ {
		if !eligible(b) {
			continue
		}
		if live := f.liveInBlock[b]; live < bestLive {
			best, bestLive = b, live
			if live == 0 {
				break
			}
		}
	}
	// A victim with every page live frees nothing; collecting it would
	// only burn endurance.
	if best >= 0 && int(bestLive) == f.geo.PagesPerBlock {
		return -1
	}
	return best
}

func (f *FTL) pendingEraseContains(cs *chipState, block int) bool {
	for _, b := range cs.pendingErase {
		if b == block {
			return true
		}
	}
	return false
}

func (f *FTL) freeContains(cs *chipState, block int) bool {
	for _, b := range cs.free {
		if b == block {
			return true
		}
	}
	return false
}
