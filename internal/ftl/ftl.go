// Package ftl implements the Evanesco-aware flash translation layer of
// SecureSSD (§6): page-level L2P mapping, the extended page-status table
// (free / valid / invalid / secured), an append-only allocator with lazy
// block erase, greedy garbage collection, and the lock manager that turns
// invalidations of secured pages into pLock/bLock commands through a
// pluggable sanitization policy.
//
// The FTL drives flash through the Target interface; the ssd package
// provides a timing-accurate implementation backed by emulated NAND
// chips, and unit tests use lightweight fakes.
package ftl

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// PPA is a device-global physical page address.
type PPA uint32

// NoPPA marks an unmapped logical page.
const NoPPA = PPA(^uint32(0))

// Geometry describes the physical page space the FTL manages.
type Geometry struct {
	Chips         int
	BlocksPerChip int
	PagesPerBlock int
	// PagesPerWL is the number of pages per wordline (3 for TLC); used by
	// the scrubbing baseline to find wordline siblings.
	PagesPerWL int
	PageBytes  int
	// Planes is the per-chip plane count (0 is treated as 1). Blocks
	// interleave across planes (chip-local block b sits in plane
	// b mod Planes); with Planes > 1 the allocator keeps one active block
	// per plane and the write path issues multi-plane program groups.
	Planes int
}

// Validate checks the geometry.
func (g Geometry) Validate() error {
	if g.Chips <= 0 || g.BlocksPerChip <= 0 || g.PagesPerBlock <= 0 || g.PagesPerWL <= 0 {
		return fmt.Errorf("ftl: non-positive geometry %+v", g)
	}
	if g.PagesPerBlock%g.PagesPerWL != 0 {
		return fmt.Errorf("ftl: PagesPerBlock %d not a multiple of PagesPerWL %d",
			g.PagesPerBlock, g.PagesPerWL)
	}
	if g.Planes < 0 {
		return fmt.Errorf("ftl: negative plane count %d", g.Planes)
	}
	if p := g.PlaneCount(); g.BlocksPerChip%p != 0 {
		return fmt.Errorf("ftl: BlocksPerChip %d not divisible across %d planes", g.BlocksPerChip, p)
	}
	return nil
}

// PlaneCount returns the effective plane count (zero Planes = 1).
func (g Geometry) PlaneCount() int {
	if g.Planes <= 1 {
		return 1
	}
	return g.Planes
}

// PlaneOfBlock returns the plane a device-global block belongs to.
func (g Geometry) PlaneOfBlock(block int) int {
	return g.BlockInChip(block) % g.PlaneCount()
}

// TotalBlocks returns the device-global block count.
func (g Geometry) TotalBlocks() int { return g.Chips * g.BlocksPerChip }

// TotalPages returns the device-global physical page count.
func (g Geometry) TotalPages() int { return g.TotalBlocks() * g.PagesPerBlock }

// PPAOf composes a physical page address.
func (g Geometry) PPAOf(chip, blockInChip, page int) PPA {
	return PPA((chip*g.BlocksPerChip+blockInChip)*g.PagesPerBlock + page)
}

// BlockOf returns the device-global block index of a page.
func (g Geometry) BlockOf(p PPA) int { return int(p) / g.PagesPerBlock }

// ChipOf returns the chip that holds a page.
func (g Geometry) ChipOf(p PPA) int { return g.BlockOf(p) / g.BlocksPerChip }

// ChipOfBlock returns the chip that holds a device-global block.
func (g Geometry) ChipOfBlock(block int) int { return block / g.BlocksPerChip }

// BlockInChip converts a device-global block index to a chip-local one.
func (g Geometry) BlockInChip(block int) int { return block % g.BlocksPerChip }

// PageInBlock returns the page offset of p within its block.
func (g Geometry) PageInBlock(p PPA) int { return int(p) % g.PagesPerBlock }

// FirstPPA returns the first page of a device-global block.
func (g Geometry) FirstPPA(block int) PPA { return PPA(block * g.PagesPerBlock) }

// WLStart returns the first page of p's wordline without allocating (the
// hot-path form of WLSiblings(p)[0]).
func (g Geometry) WLStart(p PPA) PPA {
	pib := g.PageInBlock(p)
	return PPA(int(p) - pib + (pib/g.PagesPerWL)*g.PagesPerWL)
}

// WLIndex returns the device-global wordline index of a page (the lock
// manager's coalescing key).
func (g Geometry) WLIndex(p PPA) int { return int(p) / g.PagesPerWL }

// TotalWLs returns the device-global wordline count.
func (g Geometry) TotalWLs() int { return g.TotalPages() / g.PagesPerWL }

// WLSiblings returns the physical pages sharing p's wordline (including p
// itself).
func (g Geometry) WLSiblings(p PPA) []PPA {
	pib := g.PageInBlock(p)
	wlStart := int(p) - pib + (pib/g.PagesPerWL)*g.PagesPerWL
	out := make([]PPA, g.PagesPerWL)
	for i := range out {
		out[i] = PPA(wlStart + i)
	}
	return out
}

// PageStatus is the extended page state of §6.
type PageStatus uint8

const (
	// PageFree is an erased, programmable page.
	PageFree PageStatus = iota
	// PageValid holds live data with no sanitization requirement
	// (written with REQ_OP_INSEC_WRITE).
	PageValid
	// PageSecured holds live data that must be sanitized on invalidation
	// (the default for every write, §6).
	PageSecured
	// PageInvalid holds stale data awaiting garbage collection. For
	// secured pages this state is only entered after sanitization.
	PageInvalid
	// PageRetired belongs to a block pulled from rotation after an erase
	// failure. Retired pages are never allocated again; their stale data
	// was destroyed (bLock or backstop scrub) before retirement.
	PageRetired
)

// NumPageStatus is the number of distinct page states.
const NumPageStatus = 5

func (s PageStatus) String() string {
	switch s {
	case PageFree:
		return "free"
	case PageValid:
		return "valid"
	case PageSecured:
		return "secured"
	case PageInvalid:
		return "invalid"
	case PageRetired:
		return "retired"
	default:
		return fmt.Sprintf("PageStatus(%d)", uint8(s))
	}
}

// Live reports whether the page holds current data.
func (s PageStatus) Live() bool { return s == PageValid || s == PageSecured }

// Target executes flash commands on behalf of the FTL. Implementations
// account latency and parallelism; each call corresponds to exactly one
// flash operation. Dep expresses intra-request ordering: an operation may
// not start before its dependency time (e.g. a GC program depends on its
// read). The first return value is the operation's completion time.
//
// The fallible operations (Program, Copyback, Erase, PLock, BLock)
// additionally report injected operation failures (see internal/fault).
// A non-nil error means the operation burned its full latency and failed:
// a failed Program/Copyback consumed its destination page (the write
// pointer advanced, a partial payload may be readable there), a failed
// Erase/PLock/BLock left the target's state unchanged. The FTL's
// recovery ladder — retry, escalate, retire — handles each case; fault-
// free targets simply always return nil.
type Target interface {
	// Read returns the stored payload (nil for timing-only targets) and
	// the completion time. Read-path faults (injected bit errors) are
	// absorbed by the implementation via bounded retries; after
	// exhaustion it returns the corrupted payload rather than failing.
	Read(p PPA, dep sim.Micros) ([]byte, sim.Micros)
	// Program stores data (which may be nil for timing-only runs).
	Program(p PPA, data []byte, dep sim.Micros) (sim.Micros, error)
	// Copyback moves src to dst without a bus transfer; implementations
	// fall back to read+program semantics for the data while charging
	// only on-chip time. src and dst are always on the same chip.
	Copyback(src, dst PPA, dep sim.Micros) (sim.Micros, error)
	Erase(block int, dep sim.Micros) (sim.Micros, error)
	PLock(p PPA, dep sim.Micros) (sim.Micros, error)
	BLock(block int, dep sim.Micros) (sim.Micros, error)
	// Scrub destroys a wordline in place; the in-place Vth merge cannot
	// fail (it is the recovery ladder's backstop).
	Scrub(p PPA, dep sim.Micros) sim.Micros
}

// BatchTarget is the optional device-parallelism extension of Target.
// The FTL detects it with a type assertion at construction: targets that
// implement it get wordline-batched lock pulses and multi-plane
// read/program groups; plain Targets keep the one-command-per-page
// contract unchanged.
type BatchTarget interface {
	Target
	// PLockWL programs the pAP flags of several stale pages on one
	// wordline with a single SBPI one-shot pulse (§5 programs flags
	// selectively per WL). All pages share the block's wordline; the
	// pulse costs one tpLock of chip time. Unlike a failed single-page
	// pLock — whose flag cells are spent — a failed batched pulse leaves
	// every requested flag unprogrammed, so the caller may degrade to
	// per-page retries.
	PLockWL(block, wl int, pages []PPA, dep sim.Micros) (sim.Micros, error)
	// ProgramGroup programs one page per plane on a single chip with one
	// shared tPROG of cell activity; the payload transfers still cross
	// the channel per page. The returned time is the group's completion;
	// outcomes are per page (same failure contract as Program). The
	// group's pages must sit on distinct planes of one chip.
	ProgramGroup(pages []PPA, datas [][]byte, dep sim.Micros) (sim.Micros, []error)
	// ReadGroup reads one page per plane on a single chip with one
	// shared tREAD. It is timing-only: grouped reads serve the host read
	// path, which discards payloads above the FTL. Read faults are
	// absorbed with bounded retries like Target.Read.
	ReadGroup(pages []PPA, dep sim.Micros) sim.Micros
}

// DiscardReader is an optional Target extension for reads whose payload
// the FTL discards — the host read path (payloads stop at the block
// layer; only GC relocation consumes them). The FTL detects it with a
// type assertion at construction, like BatchTarget. Implementations must
// charge exactly the timing and tracing of a fault-free Target.Read;
// deferring or skipping the data movement is the point (the SSD's
// channel-sharded mode posts the chip work to a lane instead of waiting
// for it).
type DiscardReader interface {
	ReadDiscard(p PPA, dep sim.Micros) sim.Micros
}

// MetaWriter is an optional Target extension for targets that model a
// per-page spare (out-of-band) area. After every successful program the
// FTL stamps the page with the metadata real controllers persist there
// — the logical address, a device-wide monotone write sequence number,
// and the request's security class — so a post-crash remount
// (ftl.Restore) can rebuild the mapping table from a media scan. The
// stamp rides the program pulse: it costs no latency, draws no fault
// decision, and a power cut that tears the program leaves the page
// stamp-less. Detected with a type assertion at construction, like
// BatchTarget and DiscardReader.
type MetaWriter interface {
	WriteMeta(p PPA, lpa int64, seq uint64, secure bool)
}

// GroupMetaWriter is an optional MetaWriter extension: one call stamps a
// fully-committed multi-plane stripe — consecutive logical pages
// lpa0..lpa0+len(pages)-1 with consecutive sequence numbers
// seq0..seq0+len(pages)-1, one page per plane on a single chip. The
// stamps are value-for-value what len(pages) WriteMeta calls would have
// written; the point is the coordinator fast path: a target that defers
// chip work can turn the stripe's stamps into a single deferred record
// per barrier window instead of one round-trip per page. Detected with a
// type assertion at construction, like the other extensions.
type GroupMetaWriter interface {
	MetaWriter
	WriteMetaGroup(pages []PPA, lpa0 int64, seq0 uint64, secure bool)
}

// Policy is a sanitization strategy (§7 compares five of them). The FTL
// calls Invalidate whenever a live page becomes stale; secured pages must
// not remain readable after the call chain completes. Flush is invoked at
// the end of each host request and each GC pass so batching policies can
// aggregate pLocks into bLocks.
type Policy interface {
	Name() string
	Invalidate(f *FTL, p PPA, secured bool)
	Flush(f *FTL)
}

// VictimPolicy selects how GC picks its victim block.
type VictimPolicy int

const (
	// VictimGreedy picks the fully-written block with the fewest live
	// pages (cost-min; the default, and what the paper's FTL uses).
	VictimGreedy VictimPolicy = iota
	// VictimFIFO collects blocks in write order regardless of liveness
	// (kept for the DESIGN.md GC ablation).
	VictimFIFO
)

// Config tunes the FTL.
type Config struct {
	Geometry Geometry
	// LogicalPages is the exported capacity in pages; the rest is
	// over-provisioning for GC.
	LogicalPages int
	// GCFreeBlocksLow triggers GC on a chip when its reusable blocks
	// (free + pending erase) drop below this threshold.
	GCFreeBlocksLow int
	// EagerErase erases GC victims immediately instead of lazily on
	// reuse (the paper's §5.4 explains why lazy is required on real 3D
	// NAND; eager is kept for the ablation bench).
	EagerErase bool
	// Victim selects the GC victim policy (greedy by default).
	Victim VictimPolicy
	// WearAware makes the allocator open the least-erased free block
	// instead of the most recently freed one, spreading P/E cycles
	// (dynamic wear leveling).
	WearAware bool
	// NoCopyback disables the on-chip copyback path for GC relocations,
	// forcing read-transfer-program over the bus (ablation; real FTLs
	// avoid copyback only when they must re-verify data through ECC).
	NoCopyback bool
	// Timing is used by the lock manager's pLock-vs-bLock decision rule.
	Timing LockTiming
	// LockBatch tunes the wordline-aware pLock batching of the lock
	// manager (requires a BatchTarget; silently ignored otherwise).
	LockBatch LockBatchConfig
	// Tracer receives FTL telemetry: secured-page invalidation and
	// destruction times (the T_insecure window), GC pass spans, and the
	// lock-queue / page-status / free-block gauges. Nil disables tracing
	// at the cost of one predictable branch per site.
	Tracer trace.Collector
}

// LockTiming carries the two latencies the §6 decision rule compares.
type LockTiming struct {
	PLock sim.Micros
	BLock sim.Micros
}

// LockBatchConfig tunes wordline-aware pLock batching. The lock manager
// coalesces queued pLocks that target pages of the same wordline into a
// single SBPI pulse (one tpLock instead of one per page).
type LockBatchConfig struct {
	// Enabled turns coalescing on. Off (the default), every queued pLock
	// is issued as its own one-shot pulse — exactly the pre-batching
	// behavior.
	Enabled bool
	// Deadline bounds how long a queued lock may wait for siblings, in
	// simulated µs measured between request arrivals. 0 keeps the
	// request-level guarantee: the queue is force-flushed before every
	// host request completes, so coalescing only happens within a
	// request and T_insecure is unchanged. A positive deadline defers
	// incomplete wordline groups across requests (bounding T_insecure by
	// the deadline instead); callers then need an explicit FlushLocks
	// barrier before any durability point.
	Deadline sim.Micros
	// Threshold force-flushes the whole queue when the number of queued
	// pages reaches it (0 = no threshold). Only meaningful with a
	// positive Deadline.
	Threshold int
}

// DefaultLockTiming matches §7 (100µs / 300µs).
func DefaultLockTiming() LockTiming { return LockTiming{PLock: 100, BLock: 300} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.LogicalPages <= 0 {
		return errors.New("ftl: LogicalPages must be positive")
	}
	// The allocator needs at least one spare block per chip plus GC
	// headroom.
	minSpare := c.Geometry.Chips * (c.GCFreeBlocksLow + 1)
	if c.LogicalPages > c.Geometry.TotalPages()-minSpare*c.Geometry.PagesPerBlock {
		return fmt.Errorf("ftl: logical capacity %d pages leaves no over-provisioning (physical %d)",
			c.LogicalPages, c.Geometry.TotalPages())
	}
	if c.GCFreeBlocksLow < 1 {
		return errors.New("ftl: GCFreeBlocksLow must be >= 1")
	}
	return nil
}

// Stats aggregates the counters Fig. 14 reports.
type Stats struct {
	HostReadPages    uint64
	HostWrittenPages uint64
	HostTrimmedPages uint64
	FlashReads       uint64
	FlashPrograms    uint64
	Erases           uint64
	PLocks           uint64
	BLocks           uint64
	Scrubs           uint64
	GCRuns           uint64
	GCCopies         uint64
	// Copybacks counts GC copies served by the on-chip copyback path
	// (no bus transfer); the rest crossed the channel.
	Copybacks uint64
	// SanitizeCopies counts page copies forced by sanitization itself
	// (erSSD relocations, scrSSD sibling moves) rather than by GC.
	SanitizeCopies uint64

	// Lock-batching counters (all zero unless LockBatch.Enabled).

	// PLockBatches counts batched SBPI pulses; PLockBatchedPages counts
	// the pages they destroyed (>= 2 per pulse — single-page groups fall
	// back to the plain pLock path and count under PLocks).
	PLockBatches      uint64
	PLockBatchedPages uint64
	// PLockBatchFailures counts failed batched pulses. Each left every
	// requested flag unprogrammed and degraded to per-page pLock retries
	// (whose own failures escalate normally, so PLockFailures still
	// equals LockEscalations).
	PLockBatchFailures uint64

	// Multi-plane counters (all zero on single-plane devices).

	// ProgramGroups counts multi-plane program commands; GroupedPrograms
	// counts the pages they covered. ReadGroups/GroupedReads likewise.
	ProgramGroups   uint64
	GroupedPrograms uint64
	ReadGroups      uint64
	GroupedReads    uint64

	// Fault-recovery counters (all zero without injection).

	// ProgramFailures counts failed page programs; each quarantined the
	// consumed page and retried on a fresh one (ProgramRetries).
	ProgramFailures uint64
	ProgramRetries  uint64
	// PLockFailures counts failed pLocks; each escalated the page's
	// block to a bLock (LockEscalations).
	PLockFailures   uint64
	LockEscalations uint64
	// BLockFailures counts failed bLocks; each fell back to forced
	// copy-out + erase (RecoveryErases).
	BLockFailures  uint64
	RecoveryErases uint64
	// EraseFailures counts failed erases; each retired its block
	// (RetiredBlocks), scrubbing any still-readable stale wordlines
	// first (BackstopScrubs).
	EraseFailures  uint64
	RetiredBlocks  uint64
	BackstopScrubs uint64
}

// WAF returns the write amplification factor: flash programs per host
// page written. It returns 0 before any host write.
func (s Stats) WAF() float64 {
	if s.HostWrittenPages == 0 {
		return 0
	}
	return float64(s.FlashPrograms) / float64(s.HostWrittenPages)
}
