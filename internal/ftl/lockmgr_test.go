package ftl_test

import (
	"errors"
	"testing"

	"repro/internal/blockio"
	"repro/internal/ftl"
	"repro/internal/ftl/ftltest"
	"repro/internal/nand"
	"repro/internal/sanitize"
)

func newBatchFTL(t *testing.T, policy ftl.Policy, lb ftl.LockBatchConfig) (*ftl.FTL, *ftltest.CountingTarget) {
	t.Helper()
	cfg := ftltest.SmallConfig()
	cfg.LockBatch = lb
	tgt := ftltest.New(cfg.Geometry)
	f, err := ftl.New(cfg, tgt, policy)
	if err != nil {
		t.Fatal(err)
	}
	return f, tgt
}

func trim(t *testing.T, f *ftl.FTL, lpa int64, pages int32) {
	t.Helper()
	if _, err := f.Submit(blockio.Request{Op: blockio.OpTrim, LPA: lpa, Pages: pages}, 0); err != nil {
		t.Fatal(err)
	}
}

// A trim covering complete wordlines must go out as one pulse per
// wordline, not one per page.
func TestLockBatchingOnePulsePerWordline(t *testing.T) {
	f, tgt := newBatchFTL(t, sanitize.SecSSDNoBLock(), ftl.LockBatchConfig{Enabled: true})
	// 6 sequential pages round-robin over 2 chips: each frontier block
	// gets pages 0,1,2 = one full TLC wordline.
	write(t, f, 0, 6, false)
	trim(t, f, 0, 6)
	st := f.Stats()
	if tgt.PLockWLs != 2 || tgt.PLocks != 0 {
		t.Fatalf("pulses: %d batched + %d single, want 2 + 0", tgt.PLockWLs, tgt.PLocks)
	}
	if st.PLockBatches != 2 || st.PLockBatchedPages != 6 {
		t.Fatalf("stats: %d batches / %d pages, want 2 / 6", st.PLockBatches, st.PLockBatchedPages)
	}
	if n := f.LockQueueLen(); n != 0 {
		t.Fatalf("%d pages left queued", n)
	}
}

// An incomplete wordline group degenerates to the plain per-page pLock
// (a batched command for one flag group buys nothing).
func TestLockBatchingSinglePageFallsBack(t *testing.T) {
	f, tgt := newBatchFTL(t, sanitize.SecSSDNoBLock(), ftl.LockBatchConfig{Enabled: true})
	write(t, f, 0, 6, false)
	trim(t, f, 0, 1)
	st := f.Stats()
	if tgt.PLocks != 1 || tgt.PLockWLs != 0 {
		t.Fatalf("pulses: %d single + %d batched, want 1 + 0", tgt.PLocks, tgt.PLockWLs)
	}
	if st.PLockBatches != 0 || st.PLocks != 1 {
		t.Fatalf("stats: batches=%d plocks=%d, want 0/1", st.PLockBatches, st.PLocks)
	}
}

// With batching disabled the queue is bypassed entirely.
func TestLockBatchingDisabledBypassesQueue(t *testing.T) {
	f, tgt := newBatchFTL(t, sanitize.SecSSDNoBLock(), ftl.LockBatchConfig{})
	write(t, f, 0, 6, false)
	trim(t, f, 0, 6)
	if tgt.PLocks != 6 || tgt.PLockWLs != 0 {
		t.Fatalf("pulses: %d single + %d batched, want 6 + 0", tgt.PLocks, tgt.PLockWLs)
	}
	if f.Stats().PLockBatches != 0 {
		t.Fatal("batch counter moved with batching off")
	}
}

// LockPulses is the §6 decision-rule cost model: distinct wordlines
// with batching, raw page count without.
func TestLockPulsesCostModel(t *testing.T) {
	g := ftltest.SmallGeometry()
	pages := []ftl.PPA{
		g.PPAOf(0, 0, 0), g.PPAOf(0, 0, 1), g.PPAOf(0, 0, 2), // WL0
		g.PPAOf(0, 0, 3),                   // WL1
		g.PPAOf(0, 1, 0), g.PPAOf(0, 1, 1), // other block WL0
	}
	fBatch, _ := newBatchFTL(t, sanitize.SecSSD(), ftl.LockBatchConfig{Enabled: true})
	if got := fBatch.LockPulses(pages); got != 3 {
		t.Fatalf("batched pulse estimate = %d, want 3 distinct wordlines", got)
	}
	fPlain, _ := newBatchFTL(t, sanitize.SecSSD(), ftl.LockBatchConfig{})
	if got := fPlain.LockPulses(pages); got != len(pages) {
		t.Fatalf("unbatched pulse estimate = %d, want %d", got, len(pages))
	}
}

// A failed batched pulse commits nothing; the lock manager must degrade
// to per-page pLocks (which here succeed), and the counters must show
// the full ladder.
func TestBatchedPulseFailureDegradesPerPage(t *testing.T) {
	f, tgt := newBatchFTL(t, sanitize.SecSSDNoBLock(), ftl.LockBatchConfig{Enabled: true})
	fails := 0
	tgt.FailPLockWL = func(block, wl int) error {
		fails++
		return nand.ErrPLockFailed
	}
	write(t, f, 0, 6, false)
	trim(t, f, 0, 6)
	st := f.Stats()
	if fails != 2 {
		t.Fatalf("batched pulses attempted = %d, want 2", fails)
	}
	if st.PLockBatchFailures != 2 {
		t.Fatalf("PLockBatchFailures = %d, want 2", st.PLockBatchFailures)
	}
	if tgt.PLocks != 6 {
		t.Fatalf("per-page retries = %d, want 6", tgt.PLocks)
	}
	if st.PLockFailures != 0 || st.LockEscalations != 0 {
		t.Fatal("successful per-page retries must not escalate")
	}
	if f.LockQueueLen() != 0 {
		t.Fatal("queue not drained after degraded flush")
	}
}

// The full recovery ladder: batched pulse fails, the per-page retries
// fail too, and each failed page escalates its block to a bLock.
func TestBatchedFailureEscalatesThroughLadder(t *testing.T) {
	f, tgt := newBatchFTL(t, sanitize.SecSSDNoBLock(), ftl.LockBatchConfig{Enabled: true})
	tgt.FailPLockWL = func(block, wl int) error { return nand.ErrPLockFailed }
	tgt.FailPLock = func(p ftl.PPA) error { return nand.ErrPLockFailed }
	write(t, f, 0, 6, false)
	trim(t, f, 0, 6)
	st := f.Stats()
	if st.PLockBatchFailures != 2 {
		t.Fatalf("PLockBatchFailures = %d, want 2", st.PLockBatchFailures)
	}
	if st.PLockFailures == 0 {
		t.Fatal("per-page retries never failed")
	}
	if st.PLockFailures != st.LockEscalations {
		t.Fatalf("PLockFailures %d != LockEscalations %d", st.PLockFailures, st.LockEscalations)
	}
	if tgt.BLocks == 0 {
		t.Fatal("no bLock issued at the bottom of the ladder")
	}
}

// Deferred mode: queued locks ride across requests until the deadline
// or an explicit FlushLocks barrier.
func TestDeferredLocksAwaitDeadline(t *testing.T) {
	f, tgt := newBatchFTL(t, sanitize.SecSSDNoBLock(),
		ftl.LockBatchConfig{Enabled: true, Deadline: 1 << 40})
	write(t, f, 0, 6, false)
	trim(t, f, 0, 1) // one page: incomplete WL, deferred
	if n := f.LockQueueLen(); n != 1 {
		t.Fatalf("queue = %d, want 1", n)
	}
	if tgt.PLocks+tgt.PLockWLs != 0 {
		t.Fatal("deferred page was pulsed early")
	}
	// More trims of the same wordline coalesce into the waiting group;
	// completing the wordline issues it even before the deadline. The
	// round-robin allocator put LPAs 0, 2 and 4 on chip 0's wordline 0.
	trim(t, f, 2, 1)
	trim(t, f, 4, 1)
	if n := f.LockQueueLen(); n != 0 {
		t.Fatalf("completed wordline still queued (%d pages)", n)
	}
	if tgt.PLockWLs != 1 {
		t.Fatalf("batched pulses = %d, want 1", tgt.PLockWLs)
	}
}

// The threshold bounds the queue: crossing it force-flushes even with a
// far-future deadline.
func TestThresholdForcesFlush(t *testing.T) {
	f, tgt := newBatchFTL(t, sanitize.SecSSDNoBLock(),
		ftl.LockBatchConfig{Enabled: true, Deadline: 1 << 40, Threshold: 2})
	write(t, f, 0, 6, false)
	// Trim LPAs 0 and 2: same chip (round-robin), same wordline, but the
	// WL is incomplete (page 1's slot is LPA 4's twin... still live), so
	// only the threshold can flush it.
	trim(t, f, 0, 1)
	trim(t, f, 2, 1)
	if n := f.LockQueueLen(); n != 0 {
		t.Fatalf("queue = %d after crossing threshold, want 0", n)
	}
	if tgt.PLocks+tgt.PLockWLs == 0 {
		t.Fatal("threshold crossing issued nothing")
	}
}

// An erase (GC or recovery) that destroys queued pages must cancel
// their pending locks: flushing afterwards pulses nothing.
func TestEraseCancelsQueuedLocks(t *testing.T) {
	f, tgt := newBatchFTL(t, sanitize.SecSSDNoBLock(),
		ftl.LockBatchConfig{Enabled: true, Deadline: 1 << 40})
	write(t, f, 0, 2, false) // one page per chip: incomplete WLs
	trim(t, f, 0, 2)
	if n := f.LockQueueLen(); n != 2 {
		t.Fatalf("queue = %d, want 2", n)
	}
	// The trim left both frontier blocks fully stale; erasing them
	// sanitizes the queued pages by other means.
	g := f.Geometry()
	for b := 0; b < g.TotalBlocks(); b++ {
		if f.Status(g.PPAOf(g.ChipOfBlock(b), g.BlockInChip(b), 0)) == ftl.PageInvalid {
			f.EraseNow(b)
		}
	}
	f.FlushLocks()
	if tgt.PLocks+tgt.PLockWLs != 0 {
		t.Fatal("erased pages were still pulsed")
	}
	if n := f.LockQueueLen(); n != 0 {
		t.Fatalf("queue = %d after cancel + flush, want 0", n)
	}
}

// Re-trimming an already-queued page must not double-queue it.
func TestQueueDeduplicatesPages(t *testing.T) {
	f, _ := newBatchFTL(t, sanitize.SecSSDNoBLock(),
		ftl.LockBatchConfig{Enabled: true, Deadline: 1 << 40})
	write(t, f, 0, 2, false)
	trim(t, f, 0, 1)
	if n := f.LockQueueLen(); n != 1 {
		t.Fatalf("queue = %d, want 1", n)
	}
	// The page is unmapped now; overwrite its LPA and trim again — the
	// NEW physical page queues, the old one must not re-queue.
	write(t, f, 0, 1, false)
	trim(t, f, 0, 1)
	if n := f.LockQueueLen(); n != 2 {
		t.Fatalf("queue = %d, want 2 distinct pages", n)
	}
}

// Batching composes with the real chip mirror: after batched locks the
// chip-level pages must be physically unreadable.
func TestBatchedLocksOnRealChips(t *testing.T) {
	cfg := ftltest.SmallConfig()
	cfg.LockBatch = ftl.LockBatchConfig{Enabled: true}
	tgt := ftltest.New(cfg.Geometry).WithChips(ftltest.BuildChips(t, cfg.Geometry))
	f, err := ftl.New(cfg, tgt, sanitize.SecSSDNoBLock())
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, 0, 6, false)
	trim(t, f, 0, 6)
	if tgt.PLockWLs != 2 {
		t.Fatalf("batched pulses = %d, want 2", tgt.PLockWLs)
	}
	g := f.Geometry()
	locked := 0
	for ci, chip := range tgt.Chips {
		for b := 0; b < g.BlocksPerChip; b++ {
			for p := 0; p < g.PagesPerBlock; p++ {
				if _, err := chip.Read(nand.PageAddr{Block: b, Page: p}, 0); errors.Is(err, nand.ErrPageLocked) {
					locked++
					_ = ci
				}
			}
		}
	}
	if locked != 6 {
		t.Fatalf("%d chip pages locked, want 6", locked)
	}
}
