package chipchar

import (
	"reflect"
	"testing"
)

// TestFigure6WorkerInvariant is the golden determinism check for the
// Monte-Carlo sharding scheme: the same population must come out
// bit-identical at -parallel 1 and -parallel 4.
func TestFigure6WorkerInvariant(t *testing.T) {
	serial := Figure6(Config{WLs: 3000, Seed: 7, Workers: 1})
	par := Figure6(Config{WLs: 3000, Seed: 7, Workers: 4})
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("Figure6 differs between 1 and 4 workers:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func TestSampleFlagRetentionWorkerInvariant(t *testing.T) {
	cfg := func(w int) Config { return Config{WLs: 4000, Seed: 9, Workers: w} }
	serial := SampleFlagRetention(cfg(1), 9, 3.0, 100, 365, 1000)
	par := SampleFlagRetention(cfg(4), 9, 3.0, 100, 365, 1000)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("SampleFlagRetention differs between 1 and 4 workers:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

// TestShardSeedSeparation guards the seed derivation: distinct
// (stream, shard) pairs must not collide for a fixed base seed.
func TestShardSeedSeparation(t *testing.T) {
	seen := map[int64]bool{}
	for stream := uint64(0); stream < 4; stream++ {
		for shard := uint64(0); shard < 256; shard++ {
			s := shardSeed(1, stream, shard)
			if seen[s] {
				t.Fatalf("shardSeed collision at stream %d shard %d", stream, shard)
			}
			seen[s] = true
		}
	}
}
