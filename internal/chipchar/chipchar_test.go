package chipchar

import (
	"math"
	"testing"

	"repro/internal/nand/vth"
)

func testCfg() Config { return Config{WLs: 2000, Seed: 42} }

// Figure 6: the paper's three headline observations.
func TestFigure6Shape(t *testing.T) {
	r := Figure6(testCfg())
	if len(r.MLC) != 3 || len(r.TLC) != 3 {
		t.Fatal("expected 3 boxes per technology")
	}
	mlcInit, mlcOSR, mlcRet := r.MLC[0], r.MLC[1], r.MLC[2]
	tlcInit, tlcOSR, tlcRet := r.TLC[0], r.TLC[1], r.TLC[2]

	// Initial RBER sits well below the ECC limit.
	if mlcInit.Box.Median >= 0.5 || tlcInit.Box.Median >= 0.8 {
		t.Errorf("initial medians too high: MLC %.2f TLC %.2f", mlcInit.Box.Median, tlcInit.Box.Median)
	}
	if mlcInit.FracAboveLimit > 0.001 || tlcInit.FracAboveLimit > 0.001 {
		t.Error("fresh pages must be readable")
	}
	// MLC after OSR: ~7.4% of MSB pages exceed the limit.
	if mlcOSR.FracAboveLimit < 0.03 || mlcOSR.FracAboveLimit > 0.15 {
		t.Errorf("MLC OSR frac above limit %.3f, paper reports 0.074", mlcOSR.FracAboveLimit)
	}
	// After retention most MLC MSB pages are unreadable, worst > 1.5x.
	if mlcRet.FracAboveLimit < 0.5 {
		t.Errorf("MLC OSR+retention frac %.2f, paper says most fail", mlcRet.FracAboveLimit)
	}
	if mlcRet.Box.Max < 1.5 {
		t.Errorf("MLC OSR+retention max %.2f, paper reports > 1.5x", mlcRet.Box.Max)
	}
	// TLC: all MSB pages unreadable after sanitizing LSB+CSB.
	if tlcOSR.FracAboveLimit < 0.999 {
		t.Errorf("TLC OSR frac %.3f, paper: all unreadable", tlcOSR.FracAboveLimit)
	}
	if tlcRet.FracAboveLimit < 0.999 {
		t.Errorf("TLC OSR+ret frac %.3f, paper: all unreadable", tlcRet.FracAboveLimit)
	}
	// Ordering within each technology: initial < after-OSR medians.
	if !(mlcInit.Box.Median < mlcOSR.Box.Median && tlcInit.Box.Median < tlcOSR.Box.Median) {
		t.Error("OSR must raise the median RBER")
	}
}

// Figure 9: region structure and the final operating point.
func TestFigure9DesignSpace(t *testing.T) {
	r := Figure9(testCfg())
	if len(r.Combos) != len(vth.PLockVoltages)*len(vth.PLockLatencies) {
		t.Fatalf("%d combos", len(r.Combos))
	}
	counts := map[Region]int{}
	for _, c := range r.Combos {
		counts[c.Region]++
	}
	// The paper's Fig. 9(a): 4 in Region I, 5 in Region II, 6 candidates.
	if counts[RegionI] != 4 {
		t.Errorf("Region I has %d combos, paper shows 4", counts[RegionI])
	}
	if counts[RegionII] != 5 {
		t.Errorf("Region II has %d combos, paper shows 5", counts[RegionII])
	}
	if counts[RegionCandidate] != 6 {
		t.Errorf("%d candidates, paper shows 6", counts[RegionCandidate])
	}
	// Region I must be the high-V/high-t corner; Region II low-V/low-t.
	for _, c := range r.Combos {
		if c.V == vth.PLockVoltages[4] && c.T == 200 && c.Region != RegionI {
			t.Error("(Vp5,200µs) must be in Region I")
		}
		if c.V == vth.PLockVoltages[0] && c.T == 100 && c.Region != RegionII {
			t.Error("(Vp1,100µs) must be in Region II")
		}
	}
	// The paper's anchor: 47.3% success at (Vp1, 100µs).
	for _, c := range r.Combos {
		if c.V == vth.PLockVoltages[0] && c.T == 100 {
			if math.Abs(c.FlagSuccess-0.473) > 0.01 {
				t.Errorf("(Vp1,100) success %.3f, want 0.473", c.FlagSuccess)
			}
		}
	}
	// Final choice: combination (ii) = (Vp4, 100µs).
	if r.Chosen.V != vth.PLockVoltages[3] || r.Chosen.T != 100 {
		t.Errorf("chosen (%.1fV, %.0fµs), paper selects (Vp4, 100µs)", r.Chosen.V, r.Chosen.T)
	}
	// Rejected candidate (vi) = (Vp2, 200µs): ~5 retention errors at 5y.
	for _, c := range r.Combos {
		if c.V == vth.PLockVoltages[1] && c.T == 200 {
			if c.RetErrors5y < 4 || c.RetErrors5y > 8 {
				t.Errorf("(Vp2,200) 5y errors %.1f, paper reports 5", c.RetErrors5y)
			}
		}
	}
	// Candidate retention curves exist and are non-decreasing in days.
	if len(r.RetentionErrs) != 6 {
		t.Fatalf("%d retention curves, want 6", len(r.RetentionErrs))
	}
	for key, curve := range r.RetentionErrs {
		for i := 1; i < len(curve); i++ {
			if curve[i] < curve[i-1]-1e-9 {
				t.Errorf("%s: retention errors decreased over time", key)
			}
		}
	}
}

// Figure 10: growth with the open interval and strict line ordering.
func TestFigure10Shape(t *testing.T) {
	r := Figure10(testCfg())
	if len(r.Buckets) != 6 {
		t.Fatalf("%d buckets", len(r.Buckets))
	}
	for i := 1; i < len(r.NoPE); i++ {
		if r.NoPE[i] < r.NoPE[i-1] || r.PE[i] < r.PE[i-1] || r.PERet[i] < r.PERet[i-1] {
			t.Fatal("RBER must grow with open-interval length")
		}
	}
	for i := range r.NoPE {
		if !(r.NoPE[i] < r.PE[i] && r.PE[i] < r.PERet[i]) {
			t.Fatal("condition lines out of order")
		}
	}
	// ~30% growth from zero to very long (fresh line).
	growth := r.NoPE[len(r.NoPE)-1]/r.NoPE[0] - 1
	if growth < 0.15 || growth > 0.8 {
		t.Errorf("open-interval growth %.2f, paper reports ≈0.3", growth)
	}
}

// Figure 11(b): monotone in center Vth, cutoff at ~3V.
func TestFigure11Cutoff(t *testing.T) {
	r := Figure11(testCfg())
	for i := 1; i < len(r.Cycled); i++ {
		if r.Cycled[i] < r.Cycled[i-1]-1e-9 {
			t.Fatal("RBER must not decrease with SSL center Vth")
		}
	}
	if r.Cutoff < 2.75 || r.Cutoff > 3.25 {
		t.Errorf("cutoff %.2fV, paper reports 3V", r.Cutoff)
	}
	// Below the cutoff reads are fine; far above they fail massively.
	if r.Cycled[0] > 1 {
		t.Error("1V center should not block reads")
	}
	if r.Cycled[len(r.Cycled)-1] < 5 {
		t.Error("5V center should fail catastrophically")
	}
	// A cycled block fails no later than a fresh one.
	for i := range r.Fresh {
		if r.Fresh[i] > r.Cycled[i]+1e-9 {
			t.Fatal("fresh block cannot be worse than a cycled one")
		}
	}
}

// Figure 12: region structure, reliability set, and the final point.
func TestFigure12DesignSpace(t *testing.T) {
	r := Figure12(testCfg())
	if len(r.Combos) != len(vth.BLockVoltages)*len(vth.BLockLatencies) {
		t.Fatalf("%d combos", len(r.Combos))
	}
	var regionI, candidates, reliable int
	for _, c := range r.Combos {
		switch c.Region {
		case RegionI:
			regionI++
		case RegionCandidate:
			candidates++
			if c.Reliable {
				reliable++
			}
		}
	}
	// Paper: Vb1..Vb4 fail to reach 3V (12 combos); Vb5/Vb6 are the six
	// candidates, of which (i),(ii),(iii) are reliable.
	if regionI != 12 {
		t.Errorf("Region I has %d combos, want 12", regionI)
	}
	if candidates != 6 {
		t.Errorf("%d candidates, want 6", candidates)
	}
	if reliable != 3 {
		t.Errorf("%d reliable candidates, paper reports 3 ((i),(ii),(iii))", reliable)
	}
	// Final choice: (ii) = (Vb6, 300µs).
	if r.Chosen.V != vth.BLockVoltages[5] || r.Chosen.T != 300 {
		t.Errorf("chosen (%.0fV, %.0fµs), paper selects (Vb6, 300µs)", r.Chosen.V, r.Chosen.T)
	}
	// (i) = (Vb6,400µs) keeps the center above 4V for 5 years.
	for _, c := range r.Combos {
		if c.V == vth.BLockVoltages[5] && c.T == 400 && c.Center5y < 4 {
			t.Errorf("(Vb6,400) center at 5y %.2f, paper predicts > 4V", c.Center5y)
		}
		// (vi) = (Vb5,200µs) drops below 3V before one year.
		if c.V == vth.BLockVoltages[4] && c.T == 200 && c.Center1y >= 3 {
			t.Errorf("(Vb5,200) center at 1y %.2f, paper predicts < 3V", c.Center1y)
		}
	}
	// Candidate curves decay monotonically.
	for key, curve := range r.Curves {
		for i := 1; i < len(curve); i++ {
			if curve[i] > curve[i-1]+1e-9 {
				t.Errorf("%s: SSL center rose over time", key)
			}
		}
	}
}

func TestRegionString(t *testing.T) {
	if RegionI.String() != "region-I" || RegionII.String() != "region-II" || RegionCandidate.String() != "candidate" {
		t.Fatal("region names")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := Figure6(testCfg())
	b := Figure6(testCfg())
	if a.MLC[1].FracAboveLimit != b.MLC[1].FracAboveLimit {
		t.Fatal("Figure6 not deterministic under fixed seed")
	}
}

// Monte-Carlo Fig. 9(d): the chosen point keeps every sampled 9-cell
// majority intact over 5 years; the rejected corner flips most of them.
func TestSampleFlagRetention(t *testing.T) {
	cfg := Config{WLs: 5000, Seed: 9}
	chosen := SampleFlagRetention(cfg, 9, vth.PLockVoltages[3], 100, 5*365, 1000)
	if chosen.MajorityFlips != 0 {
		t.Errorf("chosen point flipped %d of %d majorities over 5y", chosen.MajorityFlips, chosen.Flags)
	}
	if chosen.MaxErrors > 4 {
		t.Errorf("chosen point worst flag lost %d cells (majority needs <= 4)", chosen.MaxErrors)
	}
	rejected := SampleFlagRetention(cfg, 9, vth.PLockVoltages[1], 200, 5*365, 1000)
	if rejected.MajorityFlipPr < 0.5 {
		t.Errorf("rejected corner flip rate %.2f, should fail most flags", rejected.MajorityFlipPr)
	}
	// Monte-Carlo mean agrees with the closed-form expectation.
	fm := vth.DefaultFlagModel()
	want := fm.ExpectedRetentionErrors(9, vth.PLockVoltages[1], 200, 5*365, 1000)
	if d := rejected.MeanErrors - want; d > 0.3 || d < -0.3 {
		t.Errorf("Monte-Carlo mean %.2f vs closed form %.2f", rejected.MeanErrors, want)
	}
}

// §5.5: the paper's overhead claims.
func TestComputeOverhead(t *testing.T) {
	o := ComputeOverhead(9)
	if o.FlagCellsPerWL != 27 {
		t.Errorf("flag cells per WL = %d, paper uses 27", o.FlagCellsPerWL)
	}
	if o.SpareFraction > 0.01 {
		t.Errorf("flags take %.2f%% of the spare area; must be negligible", 100*o.SpareFraction)
	}
	if o.TpLockOverTprog >= 0.143 {
		t.Errorf("tpLock/tPROG = %.3f, paper: < 14.3%%", o.TpLockOverTprog)
	}
	if o.TbLockOverTbers >= 0.086+1e-9 {
		t.Errorf("tbLock/tBERS = %.3f, paper: < 8.6%%", o.TbLockOverTbers)
	}
	if o.MajorityTransistors != 200 || o.BridgeTransistors != 8 {
		t.Errorf("circuit overhead %+v", o)
	}
}

// Extension: the chosen operating points carry limited thermal margin —
// fine at the 30°C qualification point, degrading as storage runs hot.
func TestLockDurabilityVsTemperature(t *testing.T) {
	pts := LockDurabilityVsTemperature(nil)
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	if !pts[0].SSLHolds || pts[0].PAPMajorityFail5y > 1e-3 {
		t.Fatalf("locks must hold 5y at the 30°C qualification point: %+v", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].PAPMajorityFail5y < pts[i-1].PAPMajorityFail5y-1e-12 {
			t.Fatal("pAP failure probability must not drop with temperature")
		}
		if pts[i].SSLCenter5y > pts[i-1].SSLCenter5y+1e-12 {
			t.Fatal("SSL center must not rise with temperature")
		}
	}
	// At the 85°C extreme the acceleration is hundreds-fold: the 5-year
	// guarantee should visibly erode (failure probability far above the
	// 30°C value).
	if pts[len(pts)-1].PAPMajorityFail5y <= pts[0].PAPMajorityFail5y*10 {
		t.Fatal("85°C should erode the retention margin dramatically")
	}
}
