package chipchar_test

import (
	"fmt"

	"repro/internal/chipchar"
)

// Example runs both design-space explorations and prints the operating
// points the paper selects.
func Example() {
	cfg := chipchar.Config{WLs: 1000, Seed: 1}
	f9 := chipchar.Figure9(cfg)
	f12 := chipchar.Figure12(cfg)
	fmt.Printf("pLock: (%.1fV, %.0fµs)\n", f9.Chosen.V, f9.Chosen.T)
	fmt.Printf("bLock: (%.0fV, %.0fµs)\n", f12.Chosen.V, f12.Chosen.T)
	// Output:
	// pLock: (17.0V, 100µs)
	// bLock: (21V, 300µs)
}
