// Package chipchar reproduces the paper's chip-level characterization
// campaign (§4, §5.3, §5.4) on the vth cell model:
//
//	Figure 6     — RBER of MSB pages under one-shot reprogram (OSR)
//	Figure 9     — pLock design-space exploration
//	Figure 10    — RBER vs. open-interval length
//	Figure 11(b) — block read RBER vs. SSL center Vth
//	Figure 12    — bLock design-space exploration
//
// The paper measures 160 real 48-layer chips (3,686,400 wordlines); here
// each experiment samples a configurable wordline population from the
// calibrated statistical model and reports the same statistics the
// figures plot.
package chipchar

import (
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/nand/vth"
	"repro/internal/parallel"
)

// Config sizes the sampled populations.
type Config struct {
	// WLs is the number of wordlines sampled per scenario (the paper
	// tests 3.69M; the default CLI uses 20k, tests less).
	WLs  int
	Seed int64
	// Workers bounds the Monte-Carlo fan-out (<= 0: one per CPU). The
	// result is bit-identical for every worker count: sampling is split
	// into fixed-width wordline shards with per-shard RNGs derived from
	// Seed, and the partial samples are merged in shard order.
	Workers int
}

// DefaultConfig returns a population large enough for stable statistics.
func DefaultConfig() Config { return Config{WLs: 20000, Seed: 1} }

// shardWLs is the fixed shard width of the Monte-Carlo campaigns. It is
// a property of the sampling scheme, not of the machine: the shard
// layout (and therefore every drawn value) depends only on WLs and Seed,
// never on the worker count.
const shardWLs = 512

// shardRange returns shard s's wordline interval [lo, hi).
func shardRange(s, wls int) (lo, hi int) {
	lo = s * shardWLs
	hi = lo + shardWLs
	if hi > wls {
		hi = wls
	}
	return lo, hi
}

func numShards(wls int) int { return (wls + shardWLs - 1) / shardWLs }

// mix64 is the splitmix64 finalizer, used to derive well-separated
// per-shard seeds from (Seed, stream, shard).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// shardSeed derives the RNG seed of one shard of one sampling stream
// (streams keep e.g. Figure 6's MLC and TLC populations independent).
func shardSeed(seed int64, stream, shard uint64) int64 {
	z := mix64(uint64(seed) + 0x9E3779B97F4A7C15*(stream+1))
	return int64(mix64(z + 0x9E3779B97F4A7C15*(shard+1)))
}

func shardRNG(seed int64, stream, shard uint64) *rand.Rand {
	return rand.New(rand.NewSource(shardSeed(seed, stream, shard)))
}

// ---------------------------------------------------------------------
// Figure 6 — OSR reliability
// ---------------------------------------------------------------------

// Fig6Box is one box plot of Fig. 6: the distribution of per-wordline
// normalized MSB RBER under a condition, plus the fraction of wordlines
// beyond the ECC limit (normalized RBER > 1).
type Fig6Box struct {
	Label          string
	Box            metrics.BoxStats
	FracAboveLimit float64
}

// Fig6Result groups the three boxes per cell technology.
type Fig6Result struct {
	MLC []Fig6Box // Initial, AfterOSR(LSB), AfterRetention
	TLC []Fig6Box // Initial, AfterOSR(LSB+CSB), AfterRetention
}

// Figure6 reproduces Fig. 6: program a wordline population, OSR-sanitize
// sibling pages, and measure MSB-page RBER initially, right after OSR,
// and after a 1-year retention at the technology's rated endurance
// (3K P/E for MLC, 1K for TLC). The population is sampled in fixed-width
// wordline shards (see shardWLs) so the campaign parallelizes without
// changing a single drawn value.
func Figure6(cfg Config) Fig6Result {
	sample := func(stream uint64, newModel func() *vth.Model, pe int, sanitize []vth.PageKind) []Fig6Box {
		type partial struct {
			init, osr, ret []float64
		}
		// fn never fails, so Map cannot return an error here.
		parts, _ := parallel.Map(cfg.Workers, numShards(cfg.WLs), func(s int) (partial, error) {
			// Per-shard model and RNG: nothing is shared across workers.
			m := newModel()
			rng := shardRNG(cfg.Seed, stream, uint64(s))
			lo, hi := shardRange(s, cfg.WLs)
			p := partial{
				init: make([]float64, 0, hi-lo),
				osr:  make([]float64, 0, hi-lo),
				ret:  make([]float64, 0, hi-lo),
			}
			for i := lo; i < hi; i++ {
				c := vth.Condition{PECycles: pe, WLVariation: m.SampleWLVariation(rng)}
				p.init = append(p.init, m.NormalizedPageRBER(vth.MSB, c))
				p.osr = append(p.osr, m.OSRPageRBER(vth.MSB, c, sanitize)/m.ECCLimitRBER)
				cr := c
				cr.RetentionDays = 365
				p.ret = append(p.ret, m.OSRPageRBER(vth.MSB, cr, sanitize)/m.ECCLimitRBER)
			}
			return p, nil
		})
		var init, osr, ret metrics.Sample
		init.Reserve(cfg.WLs)
		osr.Reserve(cfg.WLs)
		ret.Reserve(cfg.WLs)
		for _, p := range parts {
			init.AddAll(p.init...)
			osr.AddAll(p.osr...)
			ret.AddAll(p.ret...)
		}
		mk := func(label string, s *metrics.Sample) Fig6Box {
			return Fig6Box{Label: label, Box: s.Box(), FracAboveLimit: s.FractionAbove(1)}
		}
		return []Fig6Box{
			mk("initial", &init),
			mk("after-OSR", &osr),
			mk("after-retention", &ret),
		}
	}
	return Fig6Result{
		MLC: sample(0, vth.NewMLC, 3000, []vth.PageKind{vth.LSB}),
		TLC: sample(1, vth.NewTLC, 1000, []vth.PageKind{vth.LSB, vth.CSB}),
	}
}

// ---------------------------------------------------------------------
// Figure 9 — pLock design space
// ---------------------------------------------------------------------

// Region classifies a design-space combination.
type Region int

const (
	// RegionCandidate combinations survive both elimination passes.
	RegionCandidate Region = iota
	// RegionI combinations disturb the data cells too much (§5.3 Fig 9b).
	RegionI
	// RegionII combinations cannot program the flag cells reliably
	// (§5.3 Fig 9c).
	RegionII
)

func (r Region) String() string {
	switch r {
	case RegionCandidate:
		return "candidate"
	case RegionI:
		return "region-I"
	case RegionII:
		return "region-II"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Fig9Combo is one (voltage, latency) grid point with its measurements.
type Fig9Combo struct {
	V, T float64
	// DisturbRatio is the data-cell RBER with one pLock pulse divided by
	// the undisturbed RBER (Fig. 9(b)).
	DisturbRatio float64
	// FlagSuccess is the single-cell programming success rate (Fig. 9(c)).
	FlagSuccess float64
	// RetErrors1y/5y are the expected failed cells out of k=9 after
	// retention at 1K P/E (Fig. 9(d)).
	RetErrors1y, RetErrors5y float64
	// MajorityFail5y is the probability the 9-cell majority flips within
	// 5 years.
	MajorityFail5y float64
	Region         Region
}

// Fig9Result is the full exploration outcome.
type Fig9Result struct {
	Combos []Fig9Combo
	// Chosen is the paper's final operating point: among candidates that
	// hold the majority for 5 years, the one with the shortest latency
	// (ties broken by lower voltage) — combination (ii) = (Vp4, 100µs).
	Chosen Fig9Combo
	// RetentionDays/RetentionErrs give the Fig. 9(d) curves for every
	// candidate: errors vs. days.
	RetentionDays []float64
	RetentionErrs map[string][]float64 // key "V/t"
}

// Fig9DisturbThreshold is the normalized-RBER increase above which a
// combination lands in Region I.
const Fig9DisturbThreshold = 1.09

// Fig9SuccessThreshold is the flag-programming success below which a
// combination lands in Region II.
const Fig9SuccessThreshold = 0.999

// Fig9FlagCells is the paper's final redundancy (k = 9).
const Fig9FlagCells = 9

// Figure9 runs the pLock design-space exploration.
func Figure9(cfg Config) Fig9Result {
	m := vth.NewTLC()
	fm := vth.DefaultFlagModel()
	base := m.PageRBER(vth.LSB, vth.Condition{PECycles: 1000})

	days := []float64{1, 10, 100, 365, 1000, 1825, 3650, 10000}
	res := Fig9Result{
		RetentionDays: days,
		RetentionErrs: map[string][]float64{},
	}
	for _, v := range vth.PLockVoltages {
		for _, t := range vth.PLockLatencies {
			c := Fig9Combo{V: v, T: t}
			disturbed := m.PageRBER(vth.LSB, vth.Condition{
				PECycles: 1000, ProgramDisturbs: 1, DisturbV: v, DisturbT: t,
			})
			c.DisturbRatio = disturbed / base
			c.FlagSuccess = fm.ProgramSuccessProb(v, t)
			c.RetErrors1y = fm.ExpectedRetentionErrors(Fig9FlagCells, v, t, 365, 1000)
			c.RetErrors5y = fm.ExpectedRetentionErrors(Fig9FlagCells, v, t, 5*365, 1000)
			c.MajorityFail5y = fm.MajorityFailureProb(Fig9FlagCells, v, t, 5*365, 1000)
			switch {
			case c.DisturbRatio > Fig9DisturbThreshold:
				c.Region = RegionI
			case c.FlagSuccess < Fig9SuccessThreshold:
				c.Region = RegionII
			default:
				c.Region = RegionCandidate
				key := comboKey(v, t)
				curve := make([]float64, len(days))
				for i, d := range days {
					curve[i] = fm.ExpectedRetentionErrors(Fig9FlagCells, v, t, d, 1000)
				}
				res.RetentionErrs[key] = curve
			}
			res.Combos = append(res.Combos, c)
		}
	}
	res.Chosen = chooseFig9(res.Combos)
	return res
}

func comboKey(v, t float64) string { return fmt.Sprintf("%.1fV/%.0fµs", v, t) }

// chooseFig9 applies the paper's selection rule: a reliable candidate
// (majority survives 5 years with margin) with the shortest tpLock.
func chooseFig9(combos []Fig9Combo) Fig9Combo {
	var best Fig9Combo
	found := false
	for _, c := range combos {
		if c.Region != RegionCandidate {
			continue
		}
		// Reliability requirement: under half the cells may fail in
		// expectation over 5 years, with a vanishing majority-flip chance.
		if c.RetErrors5y > float64(Fig9FlagCells)/2-1.5 || c.MajorityFail5y > 1e-3 {
			continue
		}
		if !found || c.T < best.T || (c.T == best.T && c.V < best.V) {
			best, found = c, true
		}
	}
	return best
}

// ---------------------------------------------------------------------
// Figure 10 — open interval
// ---------------------------------------------------------------------

// Fig10Bucket labels the paper's qualitative interval lengths with the
// model's open-interval durations (days a block stays erased).
type Fig10Bucket struct {
	Label string
	Days  float64
}

// Fig10Buckets mirrors the x-axis of Fig. 10.
func Fig10Buckets() []Fig10Bucket {
	return []Fig10Bucket{
		{"zero", 0},
		{"very-short", 0.001},
		{"short", 0.01},
		{"medium", 0.1},
		{"long", 1},
		{"very-long", 10},
	}
}

// Fig10Result holds the three lines of Fig. 10, normalized to the ECC
// limit.
type Fig10Result struct {
	Buckets []Fig10Bucket
	NoPE    []float64
	PE      []float64
	PERet   []float64
}

// Figure10 sweeps the open-interval length under the paper's three
// conditions.
func Figure10(cfg Config) Fig10Result {
	m := vth.NewTLC()
	res := Fig10Result{Buckets: Fig10Buckets()}
	for _, b := range res.Buckets {
		res.NoPE = append(res.NoPE, m.NormalizedPageRBER(vth.LSB,
			vth.Condition{OpenIntervalDays: b.Days}))
		res.PE = append(res.PE, m.NormalizedPageRBER(vth.LSB,
			vth.Condition{OpenIntervalDays: b.Days, PECycles: 1000}))
		res.PERet = append(res.PERet, m.NormalizedPageRBER(vth.LSB,
			vth.Condition{OpenIntervalDays: b.Days, PECycles: 1000, RetentionDays: 365}))
	}
	return res
}

// ---------------------------------------------------------------------
// Figure 11(b) — SSL cutoff
// ---------------------------------------------------------------------

// Fig11Result holds normalized block-read RBER vs. SSL center Vth for
// fresh and cycled blocks, and the cutoff where reads start failing.
type Fig11Result struct {
	Centers []float64
	Fresh   []float64
	Cycled  []float64
	// Cutoff is the lowest swept center Vth at which the cycled block's
	// normalized RBER exceeds 1.0 (the paper reports 3 V).
	Cutoff float64
}

// Figure11 sweeps the SSL center Vth from 1 V to 5 V.
func Figure11(cfg Config) Fig11Result {
	m := vth.NewTLC()
	s := vth.DefaultSSLModel()
	baseFresh := m.PageRBER(vth.MSB, vth.Condition{})
	baseCycled := m.PageRBER(vth.MSB, vth.Condition{PECycles: 1000})
	res := Fig11Result{}
	for c := 1.0; c <= 5.0+1e-9; c += 0.25 {
		res.Centers = append(res.Centers, c)
		res.Fresh = append(res.Fresh, s.BlockReadRBER(c, baseFresh)/m.ECCLimitRBER)
		cycled := s.BlockReadRBER(c, baseCycled) / m.ECCLimitRBER
		res.Cycled = append(res.Cycled, cycled)
		if res.Cutoff == 0 && cycled > 1 {
			res.Cutoff = c
		}
	}
	return res
}

// ---------------------------------------------------------------------
// Figure 12 — bLock design space
// ---------------------------------------------------------------------

// Fig12Combo is one (voltage, latency) grid point of the bLock space.
type Fig12Combo struct {
	V, T float64
	// ProgrammedCenter is the SSL center Vth right after the one-shot
	// program; combinations below the 3 V disable threshold form
	// Region I.
	ProgrammedCenter float64
	// Center1y/5y give the retention trajectory.
	Center1y, Center5y float64
	Region             Region
	// Reliable means the center stays above the disable threshold for
	// the full 5-year requirement.
	Reliable bool
}

// Fig12Result is the exploration outcome.
type Fig12Result struct {
	Combos []Fig12Combo
	// Chosen is the reliable candidate with the shortest tbLock —
	// combination (ii) = (Vb6, 300µs).
	Chosen Fig12Combo
	// Curves give center Vth vs. days for each candidate (Fig. 12(b)).
	RetentionDays []float64
	Curves        map[string][]float64
}

// Figure12 runs the bLock design-space exploration.
func Figure12(cfg Config) Fig12Result {
	s := vth.DefaultSSLModel()
	days := []float64{1, 10, 100, 365, 1000, 1825, 3650, 10000}
	res := Fig12Result{RetentionDays: days, Curves: map[string][]float64{}}
	for _, v := range vth.BLockVoltages {
		for _, t := range vth.BLockLatencies {
			c := Fig12Combo{V: v, T: t}
			c.ProgrammedCenter = s.ProgrammedCenter(v, t)
			c.Center1y = s.CenterAfter(v, t, 365)
			c.Center5y = s.CenterAfter(v, t, 5*365)
			if c.ProgrammedCenter < s.DisableThreshold {
				c.Region = RegionI
			} else {
				c.Region = RegionCandidate
				c.Reliable = c.Center5y >= s.DisableThreshold
				curve := make([]float64, len(days))
				for i, d := range days {
					curve[i] = s.CenterAfter(v, t, d)
				}
				res.Curves[comboKey(v, t)] = curve
			}
			res.Combos = append(res.Combos, c)
		}
	}
	var found bool
	for _, c := range res.Combos {
		if c.Region != RegionCandidate || !c.Reliable {
			continue
		}
		if !found || c.T < res.Chosen.T || (c.T == res.Chosen.T && c.V < res.Chosen.V) {
			res.Chosen, found = c, true
		}
	}
	return res
}

// FlagRetentionSample is the Monte-Carlo counterpart of Fig. 9(d): it
// simulates many k-cell pAP flags programmed at (v, t), ages them, and
// reports the distribution of per-flag failed-cell counts and the
// fraction of flags whose majority flipped — the paper's "at most N
// errors" statements are maxima over such populations.
type FlagRetentionSample struct {
	V, T, Days     float64
	Flags          int
	MeanErrors     float64
	MaxErrors      int
	MajorityFlips  int
	MajorityFlipPr float64
}

// SampleFlagRetention draws cfg.WLs flags of k cells each, sharded the
// same way as Figure6 (stream 2) so the draw is worker-count invariant.
func SampleFlagRetention(cfg Config, k int, v, t, days float64, peCycles int) FlagRetentionSample {
	type partial struct {
		totalErrs, maxErrs, flips int
	}
	// fn never fails, so Map cannot return an error here.
	parts, _ := parallel.Map(cfg.Workers, numShards(cfg.WLs), func(s int) (partial, error) {
		fm := vth.DefaultFlagModel()
		rng := shardRNG(cfg.Seed, 2, uint64(s))
		lo, hi := shardRange(s, cfg.WLs)
		var p partial
		for i := lo; i < hi; i++ {
			errs := 0
			for c := 0; c < k; c++ {
				if fm.SampleCellVth(v, t, days, peCycles, rng) <= fm.ReadRef {
					errs++
				}
			}
			p.totalErrs += errs
			if errs > p.maxErrs {
				p.maxErrs = errs
			}
			if errs*2 > k {
				p.flips++
			}
		}
		return p, nil
	})
	out := FlagRetentionSample{V: v, T: t, Days: days, Flags: cfg.WLs}
	var totalErrs int
	for _, p := range parts {
		totalErrs += p.totalErrs
		out.MajorityFlips += p.flips
		if p.maxErrs > out.MaxErrors {
			out.MaxErrors = p.maxErrs
		}
	}
	if cfg.WLs > 0 {
		out.MeanErrors = float64(totalErrs) / float64(cfg.WLs)
		out.MajorityFlipPr = float64(out.MajorityFlips) / float64(cfg.WLs)
	}
	return out
}

// ---------------------------------------------------------------------
// §5.5 — implementation overhead
// ---------------------------------------------------------------------

// Overhead reproduces the paper's §5.5 cost accounting for adding
// Evanesco to a flash chip.
type Overhead struct {
	// FlagCellsPerWL is the spare cells consumed per wordline
	// (k cells × pages-per-WL; 27 for TLC with k = 9).
	FlagCellsPerWL int
	// SpareBitsPerWL is the spare capacity of a wordline in cells (the
	// paper: up to 1 KiB of spare per 16-KiB page).
	SpareBitsPerWL int
	// SpareFraction is the share of the spare area the flags take.
	SpareFraction float64
	// MajorityTransistors approximates the 9-bit majority circuit
	// (~200 transistors per chip).
	MajorityTransistors int
	// BridgeTransistors is one per data-out pin (8 for a ×8 chip).
	BridgeTransistors int
	// TpLockOverTprog and TbLockOverTbers are the latency ratios of §5.5
	// (paper: < 14.3 % and < 8.6 %).
	TpLockOverTprog float64
	TbLockOverTbers float64
}

// ComputeOverhead evaluates §5.5 for a TLC chip with k flag cells per pAP
// flag and the final pLock/bLock operating points.
func ComputeOverhead(k int) Overhead {
	const (
		pagesPerWL             = 3
		spareBytes             = 1024 // spare area per 16-KiB page
		tPROG                  = 700.0
		tBERS                  = 3500.0
		transistorsPerMajority = 200 // Gajda & Sekanina [56]
		dataOutPins            = 8
	)
	fr9 := Figure9(Config{WLs: 1, Seed: 1})
	fr12 := Figure12(Config{WLs: 1, Seed: 1})
	flagCells := k * pagesPerWL
	spareCells := spareBytes * 8 * pagesPerWL // spare area spans the WL's pages
	return Overhead{
		FlagCellsPerWL:      flagCells,
		SpareBitsPerWL:      spareCells,
		SpareFraction:       float64(flagCells) / float64(spareCells),
		MajorityTransistors: transistorsPerMajority,
		BridgeTransistors:   dataOutPins,
		TpLockOverTprog:     fr9.Chosen.T / tPROG,
		TbLockOverTbers:     fr12.Chosen.T / tBERS,
	}
}

// ---------------------------------------------------------------------
// Extension — lock durability vs. storage temperature
// ---------------------------------------------------------------------

// TempDurabilityPoint evaluates the chosen pLock/bLock operating points
// at one storage temperature.
type TempDurabilityPoint struct {
	TempC float64
	// PAPMajorityFail5y is the 9-cell majority flip probability after 5
	// years at this temperature.
	PAPMajorityFail5y float64
	// SSLCenter5y is the bAP (SSL) center Vth after 5 years; the block
	// stays locked while it exceeds 3 V.
	SSLCenter5y float64
	// SSLHolds reports whether the block lock survives the 5 years.
	SSLHolds bool
}

// LockDurabilityVsTemperature extends the paper's 30°C retention analysis
// (§5.3/§5.4) across storage temperatures using Arrhenius acceleration:
// the paper qualifies the operating points at the JEDEC 30°C condition;
// this experiment shows how much thermal margin they carry.
func LockDurabilityVsTemperature(temps []float64) []TempDurabilityPoint {
	if temps == nil {
		temps = []float64{30, 40, 55, 70, 85}
	}
	fm := vth.DefaultFlagModel()
	sm := vth.DefaultSSLModel()
	const fiveYears = 5 * 365
	vp, tp := vth.PLockVoltages[3], 100.0 // chosen pLock point
	vb, tb := vth.BLockVoltages[5], 300.0 // chosen bLock point
	out := make([]TempDurabilityPoint, 0, len(temps))
	for _, tc := range temps {
		center := sm.CenterAfterAtTemp(vb, tb, fiveYears, tc)
		out = append(out, TempDurabilityPoint{
			TempC:             tc,
			PAPMajorityFail5y: fm.MajorityFailureProbAtTemp(9, vp, tp, fiveYears, 1000, tc),
			SSLCenter5y:       center,
			SSLHolds:          center >= sm.DisableThreshold,
		})
	}
	return out
}
