// Package prof wires the standard runtime/pprof file profiles into the
// cmd tools so performance regressions can be diagnosed without editing
// code: pass -cpuprofile/-memprofile and feed the files to `go tool
// pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a
// stop function that finalizes the CPU profile and, when memPath is
// non-empty, writes a heap profile. The stop function must run before
// the process exits — including error paths — or the profiles are
// truncated; it is safe to call more than once.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpuFile = f
	}
	done := false
	stop := func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}
	return stop, nil
}
