// Package prof wires the standard runtime/pprof file profiles into the
// cmd tools so performance regressions can be diagnosed without editing
// code: pass -cpuprofile/-memprofile (and, for contention hunting in the
// sharded engine, -mutexprofile/-blockprofile) and feed the files to
// `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Options names the profile outputs; empty paths disable that profile.
type Options struct {
	CPU   string // pprof CPU profile
	Mem   string // heap profile, written at stop after a forced GC
	Mutex string // mutex contention profile (SetMutexProfileFraction(1))
	Block string // blocking profile (SetBlockProfileRate(1))
}

// Start begins CPU profiling when cpuPath is non-empty and returns a
// stop function that finalizes the CPU profile and, when memPath is
// non-empty, writes a heap profile. It is StartAll restricted to the two
// classic profiles, kept for the common call sites.
func Start(cpuPath, memPath string) (func(), error) {
	return StartAll(Options{CPU: cpuPath, Mem: memPath})
}

// StartAll begins every requested profile and returns a stop function
// that finalizes them. Mutex and block profiling are sampled at full
// rate for the process lifetime between start and stop — cheap for the
// coordinator/lane handoffs being hunted, but not free; leave them off
// unless diagnosing contention. The stop function must run before the
// process exits — including error paths — or the profiles are
// truncated; it is safe to call more than once.
func StartAll(o Options) (func(), error) {
	var cpuFile *os.File
	if o.CPU != "" {
		f, err := os.Create(o.CPU)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpuFile = f
	}
	if o.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if o.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	done := false
	stop := func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if o.Mem != "" {
			runtime.GC() // materialize up-to-date allocation stats
			writeLookup(o.Mem, "heap")
		}
		if o.Mutex != "" {
			writeLookup(o.Mutex, "mutex")
			runtime.SetMutexProfileFraction(0)
		}
		if o.Block != "" {
			writeLookup(o.Block, "block")
			runtime.SetBlockProfileRate(0)
		}
	}
	return stop, nil
}

// writeLookup dumps one named runtime profile; failures are reported to
// stderr rather than returned, matching the stop path's best-effort
// contract.
func writeLookup(path, profile string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prof:", err)
		return
	}
	defer f.Close()
	p := pprof.Lookup(profile)
	if p == nil {
		fmt.Fprintf(os.Stderr, "prof: no %s profile\n", profile)
		return
	}
	if err := p.WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "prof:", err)
	}
}
