// Package vertrace reimplements the paper's §3 data-versioning study
// (VerTrace): it annotates physical pages with their owning file, tracks
// N_valid(f, t) and N_invalid(f, t) over a logical clock that advances by
// one per 4-KiB host write, classifies files as uni-version (UV) or
// multi-version (MV), and computes the two §3 metrics:
//
//	VAF(f)        = max_t N_invalid(f,t) / max_t N_valid(f,t)
//	T_insecure(f) = total logical time with N_invalid(f,t) > 0,
//	                normalized to the writes needed to fill the device.
//
// It reproduces Table 1 and the Fig. 4 time plots.
package vertrace

import (
	"fmt"
	"sort"

	"repro/internal/ftl"
	"repro/internal/metrics"
)

// fileState is the per-file tracking record.
type fileState struct {
	valid, invalid int64
	maxValid       int64
	maxInvalid     int64
	mv             bool
	insecure       bool // O_INSEC (excluded from Table 1, which studies default files)
	insecureSince  int64
	insecureTotal  int64
	everSeen       bool
}

// Tracker consumes FTL hooks and file-system observer events.
type Tracker struct {
	// Tick is the logical clock: callers advance it by one per 4-KiB
	// host write (use AdvanceTicks from the device wrapper).
	tick int64

	files map[uint64]*fileState
	// staleFile remembers which file each physically-present stale page
	// belongs to, so Destroyed events can be deduplicated (a page locked
	// by pLock is later erased too).
	staleFile map[ftl.PPA]uint64

	// watch holds the files whose N_valid/N_invalid time plots are
	// recorded (Fig. 4).
	watch map[uint64]*WatchSeries
}

// WatchSeries is a Fig. 4 time plot pair for one file.
type WatchSeries struct {
	FileID  uint64
	Valid   *metrics.Series
	Invalid *metrics.Series
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		files:     map[uint64]*fileState{},
		staleFile: map[ftl.PPA]uint64{},
		watch:     map[uint64]*WatchSeries{},
	}
}

// Watch starts recording the Fig. 4 time plots for a file.
func (t *Tracker) Watch(fileID uint64) *WatchSeries {
	ws := &WatchSeries{
		FileID:  fileID,
		Valid:   metrics.NewSeries(fmt.Sprintf("file%d/valid", fileID)),
		Invalid: metrics.NewSeries(fmt.Sprintf("file%d/invalid", fileID)),
	}
	t.watch[fileID] = ws
	return ws
}

// Tick returns the current logical time.
func (t *Tracker) Tick() int64 { return t.tick }

// AdvanceTicks moves the logical clock forward by n 4-KiB-write units.
func (t *Tracker) AdvanceTicks(n int64) { t.tick += n }

func (t *Tracker) state(file uint64) *fileState {
	st, ok := t.files[file]
	if !ok {
		st = &fileState{insecureSince: -1}
		t.files[file] = st
	}
	st.everSeen = true
	return st
}

// --- filesys.Observer ----------------------------------------------------

// FileCreated implements filesys.Observer.
func (t *Tracker) FileCreated(id uint64, insecure bool) {
	st := t.state(id)
	st.insecure = insecure
}

// FileOverwritten implements filesys.Observer: the file is multi-version.
func (t *Tracker) FileOverwritten(id uint64) { t.state(id).mv = true }

// FileDeleted implements filesys.Observer: deletion also makes the file
// multi-version per the §3 definition.
func (t *Tracker) FileDeleted(id uint64) { t.state(id).mv = true }

// --- ftl.Hooks ------------------------------------------------------------

// Hooks returns the ftl.Hooks wired to this tracker.
func (t *Tracker) Hooks() ftl.Hooks {
	return ftl.Hooks{
		Programmed:  t.programmed,
		Invalidated: t.invalidated,
		Destroyed:   t.destroyed,
	}
}

func (t *Tracker) programmed(p ftl.PPA, lpa int64, file uint64) {
	if file == 0 {
		return
	}
	st := t.state(file)
	st.valid++
	if st.valid > st.maxValid {
		st.maxValid = st.valid
	}
	t.record(file, st)
}

func (t *Tracker) invalidated(p ftl.PPA, file uint64) {
	if file == 0 {
		return
	}
	st := t.state(file)
	st.valid--
	st.invalid++
	if st.invalid > st.maxInvalid {
		st.maxInvalid = st.invalid
	}
	t.staleFile[p] = file
	if st.invalid == 1 && st.insecureSince < 0 {
		st.insecureSince = t.tick
	}
	t.record(file, st)
}

func (t *Tracker) destroyed(p ftl.PPA, file uint64) {
	owner, present := t.staleFile[p]
	if !present {
		return // already destroyed (e.g. locked, then erased)
	}
	delete(t.staleFile, p)
	if owner == 0 {
		return
	}
	st := t.state(owner)
	st.invalid--
	if st.invalid == 0 && st.insecureSince >= 0 {
		st.insecureTotal += t.tick - st.insecureSince
		st.insecureSince = -1
	}
	t.record(owner, st)
}

func (t *Tracker) record(file uint64, st *fileState) {
	if ws, ok := t.watch[file]; ok {
		ws.Valid.Record(t.tick, float64(st.valid))
		ws.Invalid.Record(t.tick, float64(st.invalid))
	}
}

// FileMetrics are the §3 per-file results.
type FileMetrics struct {
	FileID     uint64
	MV         bool
	MaxValid   int64
	MaxInvalid int64
	VAF        float64
	// TInsecure is normalized to capacityTicks (the writes needed to
	// fill the device): 1.0 means the file had stale versions present
	// for a full capacity's worth of writes.
	TInsecure float64
}

// Finish closes open insecure intervals and computes per-file metrics.
// capacityTicks is the number of 4-KiB writes that fill the device.
func (t *Tracker) Finish(capacityTicks int64) []FileMetrics {
	if capacityTicks <= 0 {
		panic("vertrace: capacityTicks must be positive")
	}
	out := make([]FileMetrics, 0, len(t.files))
	for id, st := range t.files {
		if st.insecure || !st.everSeen {
			continue
		}
		total := st.insecureTotal
		if st.insecureSince >= 0 {
			total += t.tick - st.insecureSince
		}
		m := FileMetrics{
			FileID:     id,
			MV:         st.mv,
			MaxValid:   st.maxValid,
			MaxInvalid: st.maxInvalid,
			TInsecure:  float64(total) / float64(capacityTicks),
		}
		if st.maxValid > 0 {
			m.VAF = float64(st.maxInvalid) / float64(st.maxValid)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FileID < out[j].FileID })
	return out
}

// GroupStats is one Table 1 cell group (UV or MV).
type GroupStats struct {
	Files     int
	VAFAvg    float64
	VAFMax    float64
	TInsecAvg float64
	TInsecMax float64
}

// Table1Row holds the UV and MV statistics for one workload.
type Table1Row struct {
	Workload string
	UV, MV   GroupStats
}

// Summarize aggregates per-file metrics into a Table 1 row.
func Summarize(workload string, files []FileMetrics) Table1Row {
	row := Table1Row{Workload: workload}
	agg := func(sel func(FileMetrics) bool) GroupStats {
		var g GroupStats
		var vafSum, tSum float64
		for _, f := range files {
			if !sel(f) {
				continue
			}
			g.Files++
			vafSum += f.VAF
			tSum += f.TInsecure
			if f.VAF > g.VAFMax {
				g.VAFMax = f.VAF
			}
			if f.TInsecure > g.TInsecMax {
				g.TInsecMax = f.TInsecure
			}
		}
		if g.Files > 0 {
			g.VAFAvg = vafSum / float64(g.Files)
			g.TInsecAvg = tSum / float64(g.Files)
		}
		return g
	}
	row.UV = agg(func(f FileMetrics) bool { return !f.MV })
	row.MV = agg(func(f FileMetrics) bool { return f.MV })
	return row
}

// TopFiles returns the file IDs with the largest metric values, for
// selecting the Fig. 4 representatives (fmb: a UV file with many invalid
// pages; fdb: an MV file with the highest VAF).
func TopFiles(files []FileMetrics, mv bool, n int) []FileMetrics {
	var pool []FileMetrics
	for _, f := range files {
		if f.MV == mv {
			pool = append(pool, f)
		}
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].MaxInvalid != pool[j].MaxInvalid {
			return pool[i].MaxInvalid > pool[j].MaxInvalid
		}
		return pool[i].FileID < pool[j].FileID
	})
	if len(pool) > n {
		pool = pool[:n]
	}
	return pool
}
