package vertrace

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestRunStudiesWorkerInvariant checks the batch API returns exactly
// what serial RunStudy calls produce, in input order.
func TestRunStudiesWorkerInvariant(t *testing.T) {
	mkCfg := func(p workload.Profile) StudyConfig {
		return StudyConfig{
			Workload:      p,
			CapacityPages: 8 * 1024,
			PageBytes:     4096,
			FillFraction:  0.7,
			StudyPages:    8 * 1024,
			Seed:          3,
		}
	}
	cfgs := []StudyConfig{mkCfg(workload.Mobile()), mkCfg(workload.MailServer())}

	var serial []*StudyResult
	for _, cfg := range cfgs {
		r, err := RunStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, r)
	}
	par, err := RunStudies(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("got %d results, want %d", len(par), len(serial))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], par[i]) {
			t.Errorf("study %d (%s) differs between serial and parallel runs",
				i, cfgs[i].Workload.Name)
		}
	}
}
