package vertrace

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/filesys"
	"repro/internal/parallel"
	"repro/internal/sanitize"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"

	"repro/internal/nand"
	"repro/internal/nand/vth"
)

// StudyConfig parameterizes a §3 data-versioning run. The paper uses a
// 16-GiB device with 4-KiB logical pages, fills 75% of it, and then runs
// until 64 GiB have been written; tests and the CLI scale these down.
type StudyConfig struct {
	Workload workload.Profile
	// CapacityPages is the file-system capacity in logical pages.
	CapacityPages int64
	// PageBytes is the logical page size (4096 in §3).
	PageBytes int
	// FillFraction is the initial fill level (0.75 in the paper).
	FillFraction float64
	// StudyPages is the number of pages written after the fill.
	StudyPages uint64
	Seed       int64
	// WatchIDs selects files whose Fig. 4 time plots are recorded.
	WatchIDs []uint64
}

// Validate checks the study parameters.
func (c StudyConfig) Validate() error {
	if c.CapacityPages <= 0 || c.PageBytes <= 0 {
		return fmt.Errorf("vertrace: bad capacity %d×%d", c.CapacityPages, c.PageBytes)
	}
	if c.FillFraction < 0 || c.FillFraction > 0.9 {
		return fmt.Errorf("vertrace: fill fraction %v out of [0,0.9]", c.FillFraction)
	}
	if c.StudyPages == 0 {
		return fmt.Errorf("vertrace: StudyPages must be positive")
	}
	return nil
}

// StudyResult carries everything §3 reports.
type StudyResult struct {
	Row     Table1Row
	Files   []FileMetrics
	Watched []*WatchSeries
	// DeviceReport is the underlying SSD's activity (for sanity checks).
	DeviceReport ssd.Report
}

// tickDevice advances the tracker's logical clock on host writes (one
// tick per 4-KiB write) before forwarding to the SSD.
type tickDevice struct {
	dev      *ssd.SSD
	tracker  *Tracker
	tickUnit float64 // ticks per page (pageBytes / 4096)
}

func (d *tickDevice) Submit(req blockio.Request) (sim.Micros, error) {
	if req.Op == blockio.OpWrite {
		d.tracker.AdvanceTicks(int64(float64(req.Pages) * d.tickUnit))
	}
	return d.dev.Submit(req)
}

// buildStudyDevice sizes a baseline (no-sanitization) SSD whose logical
// capacity covers the file-system capacity with GC headroom.
func buildStudyDevice(capacityPages int64, pageBytes int, seed int64) (*ssd.SSD, error) {
	const (
		chips = 4
		wls   = 64
	)
	ppb := wls * 3 // TLC
	// Logical = (1-OP) * physical must exceed capacityPages, and the FTL
	// additionally reserves GC headroom blocks per chip.
	needPhysical := float64(capacityPages) / 0.82
	blocksPerChip := int(needPhysical/float64(chips*ppb)) + 8
	// The FTL reserves (GCFreeBlocksLow+1) blocks per chip in absolute
	// terms, so tiny devices need enough blocks for 12% over-provisioning
	// to cover that reserve.
	if blocksPerChip < 26 {
		blocksPerChip = 26
	}
	cfg := ssd.Config{
		Channels:        2,
		ChipsPerChannel: chips / 2,
		Chip: nand.Geometry{
			Blocks:          blocksPerChip,
			WLsPerBlock:     wls,
			CellKind:        vth.TLC,
			PageBytes:       pageBytes,
			FlagCells:       9,
			EnduranceCycles: 1000,
		},
		OverProvision:   0.12,
		GCFreeBlocksLow: 2,
		QueueDepth:      32,
		Policy:          sanitize.Baseline(),
		Seed:            seed,
	}
	dev, err := ssd.New(cfg)
	if err != nil {
		return nil, err
	}
	if int64(dev.LogicalPages()) < capacityPages {
		return nil, fmt.Errorf("vertrace: device logical capacity %d below study capacity %d",
			dev.LogicalPages(), capacityPages)
	}
	return dev, nil
}

// RunStudies executes several independent studies with up to workers
// running concurrently (<= 0: one per CPU), returning results in input
// order. Each study owns its entire stack (device, tracker, file layer,
// generator), so the batch is bit-identical to running them serially;
// on failure the error of the lowest-index failing study is returned.
func RunStudies(cfgs []StudyConfig, workers int) ([]*StudyResult, error) {
	return parallel.Map(workers, len(cfgs), func(i int) (*StudyResult, error) {
		return RunStudy(cfgs[i])
	})
}

// RunStudy executes the data-versioning study end to end: baseline SSD,
// ext4-like file layer, workload generator, per-page file annotation.
func RunStudy(cfg StudyConfig) (*StudyResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dev, err := buildStudyDevice(cfg.CapacityPages, cfg.PageBytes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tracker := NewTracker()
	var watched []*WatchSeries
	for _, id := range cfg.WatchIDs {
		watched = append(watched, tracker.Watch(id))
	}
	dev.FTL().SetHooks(tracker.Hooks())

	td := &tickDevice{dev: dev, tracker: tracker, tickUnit: float64(cfg.PageBytes) / 4096.0}
	fs, err := filesys.New(td, cfg.CapacityPages, cfg.PageBytes)
	if err != nil {
		return nil, err
	}
	fs.SetObserver(tracker)

	gen := workload.NewGenerator(cfg.Workload, fs, cfg.PageBytes, cfg.Seed)

	// Phase 1: fill to the target fraction (creates/appends only).
	if err := gen.Fill(cfg.FillFraction); err != nil {
		return nil, fmt.Errorf("vertrace: fill phase: %w", err)
	}
	// Phase 2: steady-state study volume.
	if err := gen.RunPages(cfg.StudyPages); err != nil {
		return nil, fmt.Errorf("vertrace: study phase: %w", err)
	}

	// Capacity in 4-KiB ticks for the T_insecure normalization.
	capacityTicks := cfg.CapacityPages * int64(cfg.PageBytes) / 4096
	files := tracker.Finish(capacityTicks)
	return &StudyResult{
		Row:          Summarize(cfg.Workload.Name, files),
		Files:        files,
		Watched:      watched,
		DeviceReport: dev.Report(),
	}, nil
}
