package vertrace

import (
	"testing"

	"repro/internal/ftl"
	"repro/internal/workload"
)

func TestTrackerCountsLifecycle(t *testing.T) {
	tr := NewTracker()
	tr.FileCreated(1, false)
	// Three pages written.
	tr.programmed(10, 0, 1)
	tr.programmed(11, 1, 1)
	tr.programmed(12, 2, 1)
	st := tr.files[1]
	if st.valid != 3 || st.maxValid != 3 {
		t.Fatalf("valid=%d max=%d", st.valid, st.maxValid)
	}
	// Overwrite one page: new program + invalidation of the old copy.
	tr.AdvanceTicks(5)
	tr.programmed(13, 0, 1)
	tr.invalidated(10, 1)
	if st.valid != 3 || st.invalid != 1 || st.maxInvalid != 1 {
		t.Fatalf("after overwrite: valid=%d invalid=%d", st.valid, st.invalid)
	}
	// Destroy the stale copy.
	tr.AdvanceTicks(7)
	tr.destroyed(10, 1)
	if st.invalid != 0 {
		t.Fatalf("invalid=%d after destroy", st.invalid)
	}
	if st.insecureTotal != 7 {
		t.Fatalf("insecureTotal=%d, want 7 ticks", st.insecureTotal)
	}
}

func TestTrackerDestroyDeduplicates(t *testing.T) {
	tr := NewTracker()
	tr.programmed(5, 0, 2)
	tr.invalidated(5, 2)
	tr.destroyed(5, 2)
	tr.destroyed(5, 2) // e.g. pLock then later block erase
	if got := tr.files[2].invalid; got != 0 {
		t.Fatalf("invalid=%d after duplicate destroy, want 0", got)
	}
}

func TestTrackerIgnoresUnannotated(t *testing.T) {
	tr := NewTracker()
	tr.programmed(1, 0, 0)
	tr.invalidated(1, 0)
	tr.destroyed(1, 0)
	if len(tr.files) != 0 {
		t.Fatal("file 0 (unannotated) must not be tracked")
	}
}

func TestFinishMetrics(t *testing.T) {
	tr := NewTracker()
	tr.FileCreated(1, false)
	tr.programmed(10, 0, 1)
	tr.programmed(11, 1, 1)
	tr.AdvanceTicks(10)
	tr.programmed(12, 0, 1)
	tr.invalidated(10, 1)
	tr.AdvanceTicks(40)
	// Still insecure at Finish: the open interval must be closed.
	files := tr.Finish(100)
	if len(files) != 1 {
		t.Fatalf("%d files", len(files))
	}
	f := files[0]
	// maxValid peaks at 3 (the overwrite's new copy coexists briefly with
	// the old one, just as on a real append-only FTL); maxInvalid is 1.
	if f.VAF < 0.333 || f.VAF > 0.334 {
		t.Fatalf("VAF=%v, want 1/3", f.VAF)
	}
	if f.TInsecure != 0.4 { // 40 ticks / 100 capacity
		t.Fatalf("TInsecure=%v, want 0.4", f.TInsecure)
	}
}

func TestFinishSkipsInsecureFiles(t *testing.T) {
	tr := NewTracker()
	tr.FileCreated(1, true) // O_INSEC
	tr.programmed(10, 0, 1)
	if got := tr.Finish(10); len(got) != 0 {
		t.Fatalf("insecure files must be excluded, got %d", len(got))
	}
}

func TestFinishPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTracker().Finish(0)
}

func TestMVClassification(t *testing.T) {
	tr := NewTracker()
	tr.FileCreated(1, false)
	tr.FileCreated(2, false)
	tr.FileCreated(3, false)
	tr.programmed(1, 0, 1)
	tr.programmed(2, 0, 2)
	tr.programmed(3, 0, 3)
	tr.FileOverwritten(2)
	tr.FileDeleted(3)
	files := tr.Finish(10)
	byID := map[uint64]FileMetrics{}
	for _, f := range files {
		byID[f.FileID] = f
	}
	if byID[1].MV {
		t.Fatal("append-only file classified MV")
	}
	if !byID[2].MV || !byID[3].MV {
		t.Fatal("overwritten/deleted files must be MV")
	}
}

func TestSummarizeGroups(t *testing.T) {
	files := []FileMetrics{
		{FileID: 1, MV: false, VAF: 0.2, TInsecure: 0.1},
		{FileID: 2, MV: false, VAF: 0.4, TInsecure: 0.3},
		{FileID: 3, MV: true, VAF: 2.0, TInsecure: 1.0},
	}
	row := Summarize("test", files)
	if row.UV.Files != 2 || row.MV.Files != 1 {
		t.Fatalf("groups %+v", row)
	}
	if row.UV.VAFAvg < 0.299 || row.UV.VAFAvg > 0.301 || row.UV.VAFMax != 0.4 {
		t.Fatalf("UV VAF %+v", row.UV)
	}
	if row.MV.TInsecMax != 1.0 {
		t.Fatalf("MV stats %+v", row.MV)
	}
}

func TestTopFiles(t *testing.T) {
	files := []FileMetrics{
		{FileID: 1, MV: false, MaxInvalid: 5},
		{FileID: 2, MV: false, MaxInvalid: 50},
		{FileID: 3, MV: true, MaxInvalid: 100},
	}
	top := TopFiles(files, false, 1)
	if len(top) != 1 || top[0].FileID != 2 {
		t.Fatalf("top UV = %+v", top)
	}
	top = TopFiles(files, true, 5)
	if len(top) != 1 || top[0].FileID != 3 {
		t.Fatalf("top MV = %+v", top)
	}
}

func TestWatchRecordsSeries(t *testing.T) {
	tr := NewTracker()
	ws := tr.Watch(7)
	tr.programmed(1, 0, 7)
	tr.AdvanceTicks(3)
	tr.programmed(2, 1, 7)
	tr.invalidated(1, 7)
	if ws.Valid.Len() == 0 || ws.Invalid.Len() == 0 {
		t.Fatal("watch recorded nothing")
	}
	if ws.Invalid.Last().V != 1 {
		t.Fatalf("invalid series last = %v", ws.Invalid.Last())
	}
}

func TestStudyConfigValidation(t *testing.T) {
	bad := []StudyConfig{
		{CapacityPages: 0, PageBytes: 4096, StudyPages: 1},
		{CapacityPages: 10, PageBytes: 4096, FillFraction: 0.95, StudyPages: 1},
		{CapacityPages: 10, PageBytes: 4096, StudyPages: 0},
	}
	for i, c := range bad {
		c.Workload = workload.MailServer()
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// A scaled-down §3 run: verifies the qualitative Table 1 findings.
func TestStudyEndToEndScaledDown(t *testing.T) {
	runStudy := func(prof workload.Profile) *StudyResult {
		res, err := RunStudy(StudyConfig{
			Workload:      prof,
			CapacityPages: 24 * 1024, // 96 MiB at 4 KiB pages
			PageBytes:     4096,
			FillFraction:  0.75,
			StudyPages:    96 * 1024, // 4 capacities worth of writes
			Seed:          11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	mail := runStudy(workload.MailServer())
	db := runStudy(workload.DBServer())

	// Finding 1 (§3): heavily-updated MV files have large VAF; DBServer's
	// MV VAF dwarfs its UV VAF.
	if db.Row.MV.VAFMax < 1.0 {
		t.Errorf("DBServer MV max VAF %.2f, paper reports 7.8 (want > 1)", db.Row.MV.VAFMax)
	}
	if db.Row.MV.VAFMax <= db.Row.UV.VAFMax {
		t.Errorf("DBServer: MV VAF (%.2f) should exceed UV VAF (%.2f)",
			db.Row.MV.VAFMax, db.Row.UV.VAFMax)
	}

	// Finding 2: even UV files accumulate invalid versions through GC
	// copies (MailServer UV max VAF ≈ 1.0 in the paper).
	if mail.Row.UV.Files > 0 && mail.Row.UV.VAFMax == 0 {
		t.Errorf("MailServer UV files show no GC-induced invalid versions")
	}

	// Finding 3: T_insecure is nonzero — invalid data lingers.
	if mail.Row.MV.TInsecMax == 0 || db.Row.MV.TInsecMax == 0 {
		t.Error("stale data should linger (T_insecure > 0)")
	}

	// Device sanity: the study runs on a baseline SSD with GC active.
	if mail.DeviceReport.Stats.GCRuns == 0 {
		t.Error("study device never ran GC; fill/steady phases too small")
	}
}

func TestStudyWatchedSeries(t *testing.T) {
	res, err := RunStudy(StudyConfig{
		Workload:      workload.MailServer(),
		CapacityPages: 8 * 1024,
		PageBytes:     4096,
		FillFraction:  0.5,
		StudyPages:    16 * 1024,
		Seed:          3,
		WatchIDs:      []uint64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Watched) != 3 {
		t.Fatalf("%d watched series", len(res.Watched))
	}
	recorded := false
	for _, ws := range res.Watched {
		if ws.Valid.Len() > 0 {
			recorded = true
		}
	}
	if !recorded {
		t.Fatal("no watched file recorded any points")
	}
}

var _ ftl.Hooks = NewTracker().Hooks() // interface-shape check at compile time
