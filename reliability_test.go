package repro

// Reliability suite: the fault-injection campaigns behind the CI
// `reliability` job. The property under test is the paper's security
// guarantee taken adversarially: after any completed secure deletion, no
// byte of the deleted data is recoverable from a raw dump of any chip —
// no matter which injected failures forced the recovery ladder (program
// retry + quarantine, pLock→bLock escalation, forced copy-out + erase,
// block retirement) along the way, and including the states the device
// passes through mid-recovery (each scan runs right after a deletion
// whose ladder may still have left blocks locked, freed, or retired).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/trace"
)

// faultDevice builds a compact Evanesco device with deterministic fault
// injection. The geometry is kept small so a single campaign (and each
// fuzz iteration) stays fast while still spanning 4 chips. tr optionally
// attaches a telemetry collector (nil: untraced).
func faultDevice(t testing.TB, rate float64, seed int64, batched bool, tr trace.Collector) *core.Device {
	t.Helper()
	opts := core.Options{
		Policy:        core.PolicyEvanesco,
		Seed:          seed,
		BlocksPerChip: 16,
		WLsPerBlock:   8,
		FaultRate:     rate,
		FaultSeed:     seed,
		Trace:         tr,
	}
	if batched {
		opts.Planes = 2
		opts.LockBatch = ftl.LockBatchConfig{Enabled: true}
	}
	dev, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// runSecureDeleteCampaign drives the secured-page property: distinctive
// secret files are written, churned over, and deleted; immediately after
// every deletion a raw dump of all chips must contain no byte of the
// deleted content, whatever recovery paths the injected faults forced.
func runSecureDeleteCampaign(t testing.TB, rate float64, seed int64, churn int, batched bool, tr trace.Collector) *core.Device {
	t.Helper()
	dev := faultDevice(t, rate, seed, batched, tr)
	page := dev.PageBytes()
	// On the batched device the secret spans 24 pages: the 2-plane
	// striper then fills whole wordlines, so the delete exercises the
	// batched SBPI pulse (and its failure ladder) rather than degrading
	// to single-page groups.
	span := 3
	if batched {
		span = 24
	}
	for round := 0; round < 4; round++ {
		name := fmt.Sprintf("secret-%d.db", round)
		needle := []byte(fmt.Sprintf("TOP-SECRET-%d-%d-%g", seed, round, rate))
		payload := make([]byte, span*page)
		for i := 0; i+len(needle) <= len(payload); i += len(needle) {
			copy(payload[i:], needle)
		}
		if err := dev.WriteFile(name, payload, core.Secure); err != nil {
			t.Fatal(err)
		}
		if err := dev.Churn(churn, seed+int64(round)); err != nil {
			t.Fatal(err)
		}
		// Read back through the ECC path: injected bit errors must be
		// absorbed (corrected, or retried on an uncorrectable draw) without
		// corrupting the host's view of live data.
		got, err := dev.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, payload) {
			t.Fatalf("rate=%g seed=%d round=%d: live secret corrupted by fault campaign", rate, seed, round)
		}
		if err := dev.DeleteFile(name); err != nil {
			t.Fatal(err)
		}
		// The attacker dumps every chip right now — mid-campaign, with
		// whatever recovery the ladder just performed.
		if hits := dev.ForensicScan(needle); len(hits) != 0 {
			t.Fatalf("rate=%g seed=%d round=%d: deleted secret recoverable at %+v",
				rate, seed, round, hits[0])
		}
	}
	if err := dev.VerifySanitization(); err != nil {
		t.Fatalf("rate=%g seed=%d: %v", rate, seed, err)
	}
	return dev
}

// TestSecureDeleteUnderFaultSweep is the deterministic property sweep:
// the CI fault-rate matrix crossed with a few schedules.
func TestSecureDeleteUnderFaultSweep(t *testing.T) {
	for _, rate := range []float64{0, 1e-3, 1e-2} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("rate=%g/seed=%d", rate, seed), func(t *testing.T) {
				dev := runSecureDeleteCampaign(t, rate, seed, 400, false, nil)
				if rate >= 1e-2 {
					if fc := dev.SSD().FaultCounts(); fc.OpFails() == 0 {
						t.Fatalf("rate=%g injected no operation failures", rate)
					}
				}
			})
		}
	}
}

// FuzzFaultSchedule lets the fuzzer search the fault-schedule space for a
// campaign that breaks the secured-page invariant. The rate byte indexes
// a ladder of injection intensities up to 5% per op — beyond anything a
// plausible device would see — and the seed picks the schedule.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint8(0), int64(1))
	f.Add(uint8(1), int64(7))
	f.Add(uint8(2), int64(42))
	f.Add(uint8(3), int64(1234))
	f.Add(uint8(4), int64(-99))
	f.Fuzz(func(t *testing.T, rateIdx uint8, seed int64) {
		rates := []float64{0, 1e-3, 5e-3, 1e-2, 5e-2}
		runSecureDeleteCampaign(t, rates[int(rateIdx)%len(rates)], seed, 150, rateIdx%2 == 0, nil)
	})
}

// TestAllPoliciesSurviveFaultChurn drives every §7 configuration — not
// just Evanesco — through a faulted secure-delete churn. The baseline
// policies take different recovery paths (erSSD erases during Flush,
// scrSSD scrubs wordlines in place), each with its own reentrancy
// windows when a relocation-triggered GC flush runs mid-ladder; this
// campaign is what catches a double-freed or live-holding block there.
func TestAllPoliciesSurviveFaultChurn(t *testing.T) {
	policies := []core.PolicyName{
		core.PolicyBaseline, core.PolicyErase, core.PolicyScrub,
		core.PolicySecNoBLock, core.PolicyEvanesco,
	}
	for _, pol := range policies {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", pol, seed), func(t *testing.T) {
				dev, err := core.New(core.Options{
					Policy:        pol,
					Seed:          seed,
					BlocksPerChip: 16,
					WLsPerBlock:   8,
					FaultRate:     5e-3,
					FaultSeed:     seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				// A warmed-up device keeps GC running, which is what opens
				// the reentrant-flush windows in the baseline policies.
				if err := dev.Churn(2000, seed+100); err != nil {
					t.Fatal(err)
				}
				page := dev.PageBytes()
				needle := []byte(fmt.Sprintf("POLICY-SECRET-%s-%d", pol, seed))
				payload := make([]byte, 2*page)
				for i := 0; i+len(needle) <= len(payload); i += len(needle) {
					copy(payload[i:], needle)
				}
				if err := dev.WriteFile("secret.db", payload, core.Secure); err != nil {
					t.Fatal(err)
				}
				if err := dev.Churn(1000, seed); err != nil {
					t.Fatal(err)
				}
				if err := dev.DeleteFile("secret.db"); err != nil {
					t.Fatal(err)
				}
				if pol == core.PolicyBaseline {
					return // baseline makes no sanitization promise
				}
				if hits := dev.ForensicScan(needle); len(hits) != 0 {
					t.Fatalf("%s: deleted secret recoverable at %+v", pol, hits[0])
				}
			})
		}
	}
}

// faultArtifact is the JSON blob the CI reliability job uploads: the
// injected-fault census against the recovery ladder's own books, plus
// the sanitization audit (ledger counters and verifier report).
type faultArtifact struct {
	FaultRate   float64            `json:"fault_rate"`
	FaultSeed   int64              `json:"fault_seed"`
	Injected    fault.Counts       `json:"injected"`
	Stats       ftl.Stats          `json:"ftl_stats"`
	ReadRetries uint64             `json:"read_retries"`
	ReadFails   uint64             `json:"read_failures"`
	Audit       audit.Stats        `json:"audit"`
	Verify      audit.VerifyReport `json:"audit_verify"`
}

// TestFaultCampaign runs the CI campaign at the rate selected by
// SECSSD_FAULT_RATE (default 0), cross-checks every injected failure
// against its recovery action, and — when SECSSD_FAULT_ARTIFACT names a
// path — writes the counter census there for the job's artifact upload.
func TestFaultCampaign(t *testing.T) {
	rate := 0.0
	if v := os.Getenv("SECSSD_FAULT_RATE"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("SECSSD_FAULT_RATE=%q: %v", v, err)
		}
		rate = parsed
	}
	const seed = 41
	rec := trace.NewRecorder(trace.RecorderConfig{Chips: 4, Channels: 2})
	dev := runSecureDeleteCampaign(t, rate, seed, 800, false, rec)

	st := dev.SSD().FTL().Stats()
	fc := dev.SSD().FaultCounts()
	// The audit gate: after the campaign, no secured copy may remain
	// invalidated but undestroyed, and every closed window's phases must
	// sum to its span.
	dev.Sync()
	verify := rec.AuditLedger().Verify(rec.Horizon())
	if !verify.Clean() {
		t.Errorf("audit verifier: %v", verify.Err())
	}
	aud := rec.AuditLedger().Stats(rec.Horizon())
	if aud.Phases.Sum() != aud.WindowSumUs {
		t.Errorf("phase sum %d != window sum %d", aud.Phases.Sum(), aud.WindowSumUs)
	}
	if rate == 0 && fc.OpFails() != 0 {
		t.Fatalf("rate 0 injected %d failures", fc.OpFails())
	}
	// Every injected failure must be matched by its rung of the ladder.
	if st.ProgramFailures != fc.ProgramFails {
		t.Errorf("FTL recovered %d program failures, injector produced %d",
			st.ProgramFailures, fc.ProgramFails)
	}
	if st.LockEscalations != st.PLockFailures {
		t.Errorf("LockEscalations %d != PLockFailures %d", st.LockEscalations, st.PLockFailures)
	}
	if st.RecoveryErases != st.BLockFailures {
		t.Errorf("RecoveryErases %d != BLockFailures %d", st.RecoveryErases, st.BLockFailures)
	}
	if st.RetiredBlocks != st.EraseFailures {
		t.Errorf("RetiredBlocks %d != EraseFailures %d", st.RetiredBlocks, st.EraseFailures)
	}

	if path := os.Getenv("SECSSD_FAULT_ARTIFACT"); path != "" {
		rep := dev.Report()
		blob, err := json.MarshalIndent(faultArtifact{
			FaultRate:   rate,
			FaultSeed:   seed,
			Injected:    fc,
			Stats:       st,
			ReadRetries: rep.ReadRetries,
			ReadFails:   rep.ReadFailures,
			Audit:       aud,
			Verify:      verify,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFaultSweepAuditLedger crosses the CI fault-rate matrix with the
// audit ledger: every campaign — with and without pLock batching — must
// end with zero live unlocked secured copies (checked after a FlushLocks
// barrier drains any deferred batch), the phase sums must equal the
// window sums, and when the injector forced lock failures the recovery
// ladder must be visible as ladder-phase time in the closed windows.
func TestFaultSweepAuditLedger(t *testing.T) {
	for _, batched := range []bool{false, true} {
		for _, rate := range []float64{0, 1e-3, 1e-2} {
			for seed := int64(1); seed <= 2; seed++ {
				t.Run(fmt.Sprintf("batched=%v/rate=%g/seed=%d", batched, rate, seed), func(t *testing.T) {
					rec := trace.NewRecorder(trace.RecorderConfig{Chips: 4, Channels: 2})
					dev := runSecureDeleteCampaign(t, rate, seed, 400, batched, rec)
					dev.Sync() // drain deferred lock batches before auditing
					verify := rec.AuditLedger().Verify(rec.Horizon())
					if !verify.Clean() {
						t.Fatalf("audit verifier: %v\nopen copies: %+v", verify.Err(), verify.Open)
					}
					if verify.PhaseSumErrors != 0 {
						t.Fatalf("%d windows whose phases do not sum to their span", verify.PhaseSumErrors)
					}
					aud := rec.AuditLedger().Stats(rec.Horizon())
					if aud.Phases.Sum() != aud.WindowSumUs {
						t.Fatalf("phase sum %d != window sum %d", aud.Phases.Sum(), aud.WindowSumUs)
					}
					if aud.Windows == 0 {
						t.Fatal("campaign closed no windows")
					}
					// Every injected pLock/bLock failure walked the recovery
					// ladder; if any ladder rung destroyed a secured copy, the
					// window that copy belonged to must carry ladder time.
					st := dev.SSD().FTL().Stats()
					if lockFails := st.PLockFailures + st.PLockBatchFailures + st.BLockFailures; lockFails > 0 {
						if aud.LadderDestroys == 0 {
							t.Errorf("%d lock failures but no ladder-destroyed secured copies", lockFails)
						}
						if aud.LadderWindows == 0 || aud.Phases.Ladder == 0 {
							t.Errorf("lock failures left no ladder-phase time: %+v", aud)
						}
					}
					if rate == 0 && aud.LadderDestroys != 0 {
						t.Errorf("fault-free run attributed %d destroys to the ladder", aud.LadderDestroys)
					}
				})
			}
		}
	}
}

// TestSecureDeleteUnderFaultSweepBatched repeats the fault sweep on the
// amortized device (2 planes, wordline-batched pLocks): the security
// property must hold through batched-pulse failures, and the injector's
// pLock-failure census must match the lock manager's two failure
// counters exactly (each failed batched pulse is ONE chip-level draw,
// then per-page retries draw again).
func TestSecureDeleteUnderFaultSweepBatched(t *testing.T) {
	for _, rate := range []float64{0, 1e-3, 1e-2} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("rate=%g/seed=%d", rate, seed), func(t *testing.T) {
				dev := runSecureDeleteCampaign(t, rate, seed, 400, true, nil)
				st := dev.SSD().FTL().Stats()
				fc := dev.SSD().FaultCounts()
				if fc.PLockFails != st.PLockFailures+st.PLockBatchFailures {
					t.Errorf("injected pLock failures %d != per-page %d + batched %d",
						fc.PLockFails, st.PLockFailures, st.PLockBatchFailures)
				}
				if st.LockEscalations != st.PLockFailures {
					t.Errorf("LockEscalations %d != PLockFailures %d",
						st.LockEscalations, st.PLockFailures)
				}
				if st.PLockBatches == 0 {
					t.Error("batched campaign issued no batched pulses")
				}
				if rate >= 1e-2 && fc.OpFails() == 0 {
					t.Fatalf("rate=%g injected no operation failures", rate)
				}
			})
		}
	}
}
