// Command benchguard compares a freshly generated BENCH_parallel.json
// against the committed baseline and fails (exit 1) when throughput
// regressed beyond the threshold. CI runs it after the bench smoke so a
// PR that slows the simulator down shows up as a red check instead of a
// silently growing campaign time.
//
// Usage:
//
//	benchguard -baseline ci/bench_baseline.json -fresh BENCH_parallel.json [-threshold 0.20]
//
// Three quantities are guarded, each against its own baseline value:
// serial campaign throughput, 4-worker campaign throughput (both in
// grid-cells per second, so a changed grid size stays comparable), and
// the flash-op allocation count (machine-independent; a tight canary for
// hot-path allocations creeping back).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the BENCH_parallel.json schema written by
// BenchmarkParallelFigure14 (parallel_bench_test.go).
type report struct {
	GridCells           int     `json:"grid_cells"`
	SerialSec           float64 `json:"serial_sec"`
	ParallelSec         float64 `json:"parallel_sec"`
	Speedup             float64 `json:"speedup"`
	FlashOpsAllocsPerOp float64 `json:"flashops_allocs_per_op"`
}

// cellsPerSec converts a campaign wall-clock into throughput.
func (r report) cellsPerSec(sec float64) float64 {
	if sec <= 0 {
		return 0
	}
	return float64(r.GridCells) / sec
}

// compare returns one message per guarded quantity that regressed beyond
// threshold (a fraction: 0.20 means "more than 20% worse than baseline").
func compare(baseline, fresh report, threshold float64) []string {
	var bad []string
	check := func(name string, base, got float64, lowerIsBetter bool) {
		if base <= 0 {
			// No ratio to take. A zero-alloc baseline is still a guarantee
			// worth keeping: regressing it to real allocations fails.
			if lowerIsBetter && got > 0.5 {
				bad = append(bad, fmt.Sprintf("%s: baseline %.3f, fresh %.3f", name, base, got))
				fmt.Printf("%-28s baseline %10.3f   fresh %10.3f   REGRESSED\n", name, base, got)
			}
			return
		}
		var regressed bool
		var ratio float64
		if lowerIsBetter {
			ratio = got / base
			regressed = got > base*(1+threshold)
		} else {
			ratio = base / got
			regressed = got < base*(1-threshold)
		}
		status := "ok"
		if regressed {
			status = "REGRESSED"
			bad = append(bad, fmt.Sprintf("%s: baseline %.3f, fresh %.3f (%.0f%% worse)",
				name, base, got, (ratio-1)*100))
		}
		fmt.Printf("%-28s baseline %10.3f   fresh %10.3f   %s\n", name, base, got, status)
	}
	check("serial cells/sec", baseline.cellsPerSec(baseline.SerialSec), fresh.cellsPerSec(fresh.SerialSec), false)
	check("parallel-4 cells/sec", baseline.cellsPerSec(baseline.ParallelSec), fresh.cellsPerSec(fresh.ParallelSec), false)
	check("flash-op allocs/op", baseline.FlashOpsAllocsPerOp, fresh.FlashOpsAllocsPerOp, true)
	return bad
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	baselinePath := flag.String("baseline", "ci/bench_baseline.json", "committed baseline report")
	freshPath := flag.String("fresh", "BENCH_parallel.json", "freshly generated report")
	threshold := flag.Float64("threshold", 0.20, "allowed regression fraction")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	if bad := compare(baseline, fresh, *threshold); len(bad) > 0 {
		fmt.Fprintln(os.Stderr, "benchguard: throughput regression beyond threshold:")
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "  -", m)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: within threshold")
}
