// Command benchguard compares freshly generated bench reports
// (BENCH_parallel.json, BENCH_batching.json) against the committed
// baseline and fails (exit 1) when throughput regressed beyond the
// threshold. CI runs it after the bench smoke so a PR that slows the
// simulator down shows up as a red check instead of a silently growing
// campaign time.
//
// Usage:
//
//	benchguard -baseline ci/bench_baseline.json -fresh BENCH_parallel.json
//	           [-batching BENCH_batching.json] [-engine BENCH_engine.json]
//	           [-threshold 0.20] [-smoke-sec SECONDS]
//
// Guarded quantities, each against its own baseline value: serial
// campaign throughput, 4-worker campaign throughput (both in grid-cells
// per second, so a changed grid size stays comparable), the flash-op
// allocation count (machine-independent; a tight canary for hot-path
// allocations creeping back), and — from BENCH_batching.json — the
// simulated IOPS of the amortized and non-amortized devices plus the
// batching speedup floor (simulated time is deterministic, so these are
// exact across machines; the floor is the PR's >= 1.5x acceptance bar).
// Pass -batching "" to skip the batching report (e.g. for historical
// baselines).
//
// From BENCH_engine.json, the event-kernel gates: a dispatch-rate floor
// on the ladder/record path (events per second against the baseline),
// the 0-allocs/op canary for the steady-state loop, and the sharded
// speedup floors — one per shard count (2/4/8), each enforced only on
// runners with at least that many CPUs. Speedups are keyed off the
// reports' skip notes, not a zero value: a single-CPU runner records
// "skipped_single_cpu" and omits the numbers (that would only measure
// goroutine-scheduling noise), and benchguard skips those floors. A
// MULTI-CPU runner that fails to measure a gated speedup is a
// regression, not a skip — the silent-skip-forever failure mode is the
// thing this gate exists to prevent. Pass -engine "" to skip.
//
// -smoke-sec feeds the CI wall-clock smoke gate: the measured seconds of
// the reduced default-scale secssd-bench run, compared against the
// baseline's smoke_budget_sec with a fixed 25% allowance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the BENCH_parallel.json schema written by
// BenchmarkParallelFigure14 (parallel_bench_test.go). The batching_*
// fields additionally appear in the committed baseline, where they gate
// BENCH_batching.json (see batchingReport).
// Speedup is a pointer so "not measured" (field omitted, or the legacy
// shape that wrote a literal 0 next to the skip note) never reads as a
// measured 0×: skipping is keyed off the note and the CPU count, the
// number itself only ever compares when it was actually measured.
type report struct {
	NumCPU              int      `json:"num_cpu"`
	GridCells           int      `json:"grid_cells"`
	SerialSec           float64  `json:"serial_sec"`
	ParallelSec         float64  `json:"parallel_sec"`
	Speedup             *float64 `json:"speedup,omitempty"`
	SpeedupNote         string   `json:"speedup_note,omitempty"`
	FlashOpsAllocsPerOp float64  `json:"flashops_allocs_per_op"`
	// Baseline-only: simulated-IOPS floors for the batching ablation.
	BatchingDisabledIOPS float64 `json:"batching_disabled_iops,omitempty"`
	BatchingEnabledIOPS  float64 `json:"batching_enabled_iops,omitempty"`
	BatchingMinSpeedup   float64 `json:"batching_min_speedup,omitempty"`
	// Baseline-only: event-kernel gates for BENCH_engine.json (see
	// engineReport). EngineAllocsPerOp is expected to stay exactly 0.
	// The sharded floors gate per cell, each only on runners with at
	// least that many CPUs.
	EngineEventsPerSec       float64 `json:"engine_events_per_sec,omitempty"`
	EngineAllocsPerOp        float64 `json:"engine_allocs_per_op"`
	EngineMinShardedSpeedup  float64 `json:"engine_min_sharded_speedup,omitempty"`
	EngineMinSharded4Speedup float64 `json:"engine_min_sharded_speedup_4,omitempty"`
	EngineMinSharded8Speedup float64 `json:"engine_min_sharded_speedup_8,omitempty"`
	// Baseline-only: wall-clock budget (seconds) for the CI smoke run of
	// the reduced default-scale campaign, gated via -smoke-sec.
	SmokeBudgetSec float64 `json:"smoke_budget_sec,omitempty"`
}

// engineReport mirrors the BENCH_engine.json schema written by
// BenchmarkEventKernel (engine_bench_test.go). The speedup pointers
// follow the same not-measured-vs-zero discipline as report.Speedup.
type engineReport struct {
	NumCPU             int      `json:"num_cpu"`
	EventsPerSecHeap   float64  `json:"events_per_sec_heap"`
	EventsPerSecLadder float64  `json:"events_per_sec_ladder"`
	EngineAllocsPerOp  float64  `json:"engine_allocs_per_op"`
	ShardedSpeedup     *float64 `json:"sharded_speedup,omitempty"`
	Sharded4Speedup    *float64 `json:"sharded4_speedup,omitempty"`
	Sharded8Speedup    *float64 `json:"sharded8_speedup,omitempty"`
	ShardedNote        string   `json:"sharded_note"`
}

// batchingReport mirrors the BENCH_batching.json schema written by
// BenchmarkLockBatching (batching_bench_test.go).
type batchingReport struct {
	DisabledIOPS float64 `json:"batching_disabled_iops"`
	EnabledIOPS  float64 `json:"batching_enabled_iops"`
	Speedup      float64 `json:"batching_speedup"`
}

// cellsPerSec converts a campaign wall-clock into throughput.
func (r report) cellsPerSec(sec float64) float64 {
	if sec <= 0 {
		return 0
	}
	return float64(r.GridCells) / sec
}

// compare returns one message per guarded quantity that regressed beyond
// threshold (a fraction: 0.20 means "more than 20% worse than baseline").
func compare(baseline, fresh report, threshold float64) []string {
	var bad []string
	check := func(name string, base, got float64, lowerIsBetter bool) {
		if base <= 0 {
			// No ratio to take. A zero-alloc baseline is still a guarantee
			// worth keeping: regressing it to real allocations fails.
			if lowerIsBetter && got > 0.5 {
				bad = append(bad, fmt.Sprintf("%s: baseline %.3f, fresh %.3f", name, base, got))
				fmt.Printf("%-28s baseline %10.3f   fresh %10.3f   REGRESSED\n", name, base, got)
			}
			return
		}
		var regressed bool
		var ratio float64
		if lowerIsBetter {
			ratio = got / base
			regressed = got > base*(1+threshold)
		} else {
			ratio = base / got
			regressed = got < base*(1-threshold)
		}
		status := "ok"
		if regressed {
			status = "REGRESSED"
			bad = append(bad, fmt.Sprintf("%s: baseline %.3f, fresh %.3f (%.0f%% worse)",
				name, base, got, (ratio-1)*100))
		}
		fmt.Printf("%-28s baseline %10.3f   fresh %10.3f   %s\n", name, base, got, status)
	}
	check("serial cells/sec", baseline.cellsPerSec(baseline.SerialSec), fresh.cellsPerSec(fresh.SerialSec), false)
	check("parallel-4 cells/sec", baseline.cellsPerSec(baseline.ParallelSec), fresh.cellsPerSec(fresh.ParallelSec), false)
	check("flash-op allocs/op", baseline.FlashOpsAllocsPerOp, fresh.FlashOpsAllocsPerOp, true)
	// The parallel-speedup floor only means something with real
	// parallelism: a single-CPU runner records a note instead of a
	// number, and the comparison is skipped. A multi-CPU runner must
	// measure it — a note or a missing number there means the gate would
	// silently never fire again, which is itself a regression.
	switch {
	case fresh.NumCPU <= 1:
		// 0 is a report that never recorded a CPU count — unknowable, so
		// treated like a single-CPU runner.
		fmt.Printf("%-28s skipped (single CPU)\n", "parallel speedup")
	case fresh.SpeedupNote != "" || fresh.Speedup == nil:
		bad = append(bad, fmt.Sprintf(
			"parallel speedup: not measured on a %d-CPU runner (note=%q)",
			fresh.NumCPU, fresh.SpeedupNote))
		fmt.Printf("%-28s fresh not measured on %d CPUs   REGRESSED\n", "parallel speedup", fresh.NumCPU)
	case baseline.Speedup != nil && *baseline.Speedup > 1:
		check("parallel speedup", *baseline.Speedup, *fresh.Speedup, false)
	default:
		fmt.Printf("%-28s measured %.2fx (no baseline floor)\n", "parallel speedup", *fresh.Speedup)
	}
	return bad
}

// compareEngine guards the event-kernel dispatch rate and its
// 0-allocs/op canary. The sharded-speedup floor is honored only when
// the fresh report measured one (multi-CPU runner, no skip note).
func compareEngine(baseline report, fresh engineReport, threshold float64) []string {
	var bad []string
	if base := baseline.EngineEventsPerSec; base > 0 {
		status := "ok"
		if fresh.EventsPerSecLadder < base*(1-threshold) {
			status = "REGRESSED"
			bad = append(bad, fmt.Sprintf("engine events/sec: baseline %.0f, fresh %.0f (%.0f%% worse)",
				base, fresh.EventsPerSecLadder, (base/fresh.EventsPerSecLadder-1)*100))
		}
		fmt.Printf("%-28s baseline %10.0f   fresh %10.0f   %s\n",
			"engine events/sec", base, fresh.EventsPerSecLadder, status)
	}
	// Zero-alloc canary: the baseline guarantee is exact, not a ratio.
	status := "ok"
	if fresh.EngineAllocsPerOp > baseline.EngineAllocsPerOp+0.5 {
		status = "REGRESSED"
		bad = append(bad, fmt.Sprintf("engine allocs/op: baseline %.3f, fresh %.3f",
			baseline.EngineAllocsPerOp, fresh.EngineAllocsPerOp))
	}
	fmt.Printf("%-28s baseline %10.3f   fresh %10.3f   %s\n",
		"engine allocs/op", baseline.EngineAllocsPerOp, fresh.EngineAllocsPerOp, status)
	// Per-cell sharded speedup floors. Each cell gates only on runners
	// with at least that many CPUs — a smaller machine skips it honestly.
	// On a runner big enough to gate, the number must exist: a skip note
	// or a missing speedup there would let the floor silently never fire
	// again, so it fails instead.
	cell := func(name string, floor float64, cpus int, sp *float64) {
		if floor <= 0 {
			return
		}
		if fresh.NumCPU < cpus {
			fmt.Printf("%-28s skipped (num_cpu %d < %d)\n", name, fresh.NumCPU, cpus)
			return
		}
		if fresh.ShardedNote != "" || sp == nil {
			bad = append(bad, fmt.Sprintf("%s: not measured on a %d-CPU runner (note=%q)",
				name, fresh.NumCPU, fresh.ShardedNote))
			fmt.Printf("%-28s fresh not measured on %d CPUs   REGRESSED\n", name, fresh.NumCPU)
			return
		}
		status := "ok"
		if *sp < floor {
			status = "REGRESSED"
			bad = append(bad, fmt.Sprintf("%s floor: need >= %.2fx, fresh %.2fx", name, floor, *sp))
		}
		fmt.Printf("%-28s floor    %10.3f   fresh %10.3f   %s\n", name, floor, *sp, status)
	}
	cell("engine sharded-2 speedup", baseline.EngineMinShardedSpeedup, 2, fresh.ShardedSpeedup)
	cell("engine sharded-4 speedup", baseline.EngineMinSharded4Speedup, 4, fresh.Sharded4Speedup)
	cell("engine sharded-8 speedup", baseline.EngineMinSharded8Speedup, 8, fresh.Sharded8Speedup)
	return bad
}

// compareSmoke gates the CI wall-clock smoke: the measured seconds of
// the reduced default-scale run against the baseline budget, with a
// fixed 25% allowance for runner noise.
func compareSmoke(baseline report, smokeSec float64) []string {
	const allowance = 0.25
	if baseline.SmokeBudgetSec <= 0 {
		fmt.Printf("%-28s skipped (no smoke_budget_sec in baseline)\n", "smoke wall-clock")
		return nil
	}
	limit := baseline.SmokeBudgetSec * (1 + allowance)
	status := "ok"
	var bad []string
	if smokeSec > limit {
		status = "REGRESSED"
		bad = append(bad, fmt.Sprintf("smoke wall-clock: budget %.1fs (+%d%% = %.1fs), measured %.1fs",
			baseline.SmokeBudgetSec, int(allowance*100), limit, smokeSec))
	}
	fmt.Printf("%-28s budget   %10.3f   fresh %10.3f   %s\n", "smoke wall-clock", limit, smokeSec, status)
	return bad
}

// compareBatching guards the amortization metrics. Simulated IOPS is
// deterministic, so the threshold only absorbs intentional model
// changes, and the speedup floor is an absolute acceptance bar rather
// than a relative one.
func compareBatching(baseline report, fresh batchingReport, threshold float64) []string {
	var bad []string
	check := func(name string, base, got float64) {
		if base <= 0 {
			return
		}
		status := "ok"
		if got < base*(1-threshold) {
			status = "REGRESSED"
			bad = append(bad, fmt.Sprintf("%s: baseline %.3f, fresh %.3f (%.0f%% worse)",
				name, base, got, (base/got-1)*100))
		}
		fmt.Printf("%-28s baseline %10.3f   fresh %10.3f   %s\n", name, base, got, status)
	}
	check("batching-off sim-IOPS", baseline.BatchingDisabledIOPS, fresh.DisabledIOPS)
	check("batching-on sim-IOPS", baseline.BatchingEnabledIOPS, fresh.EnabledIOPS)
	if min := baseline.BatchingMinSpeedup; min > 0 {
		status := "ok"
		if fresh.Speedup < min {
			status = "REGRESSED"
			bad = append(bad, fmt.Sprintf("batching speedup floor: need >= %.2fx, fresh %.2fx",
				min, fresh.Speedup))
		}
		fmt.Printf("%-28s floor    %10.3f   fresh %10.3f   %s\n", "batching speedup", min, fresh.Speedup, status)
	}
	return bad
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	baselinePath := flag.String("baseline", "ci/bench_baseline.json", "committed baseline report")
	freshPath := flag.String("fresh", "BENCH_parallel.json", "freshly generated report")
	batchingPath := flag.String("batching", "BENCH_batching.json", "freshly generated batching report ('' skips)")
	enginePath := flag.String("engine", "BENCH_engine.json", "freshly generated event-kernel report ('' skips)")
	threshold := flag.Float64("threshold", 0.20, "allowed regression fraction")
	smokeSec := flag.Float64("smoke-sec", 0, "measured smoke-run wall clock in seconds (0 skips)")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	bad := compare(baseline, fresh, *threshold)
	if *batchingPath != "" {
		var batching batchingReport
		data, err := os.ReadFile(*batchingPath)
		if err == nil {
			err = json.Unmarshal(data, &batching)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		bad = append(bad, compareBatching(baseline, batching, *threshold)...)
	}
	if *enginePath != "" {
		var engine engineReport
		data, err := os.ReadFile(*enginePath)
		if err == nil {
			err = json.Unmarshal(data, &engine)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		bad = append(bad, compareEngine(baseline, engine, *threshold)...)
	}
	if *smokeSec > 0 {
		bad = append(bad, compareSmoke(baseline, *smokeSec)...)
	}
	if len(bad) > 0 {
		fmt.Fprintln(os.Stderr, "benchguard: throughput regression beyond threshold:")
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "  -", m)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: within threshold")
}
