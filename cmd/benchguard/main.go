// Command benchguard compares freshly generated bench reports
// (BENCH_parallel.json, BENCH_batching.json) against the committed
// baseline and fails (exit 1) when throughput regressed beyond the
// threshold. CI runs it after the bench smoke so a PR that slows the
// simulator down shows up as a red check instead of a silently growing
// campaign time.
//
// Usage:
//
//	benchguard -baseline ci/bench_baseline.json -fresh BENCH_parallel.json
//	           [-batching BENCH_batching.json] [-engine BENCH_engine.json]
//	           [-threshold 0.20]
//
// Guarded quantities, each against its own baseline value: serial
// campaign throughput, 4-worker campaign throughput (both in grid-cells
// per second, so a changed grid size stays comparable), the flash-op
// allocation count (machine-independent; a tight canary for hot-path
// allocations creeping back), and — from BENCH_batching.json — the
// simulated IOPS of the amortized and non-amortized devices plus the
// batching speedup floor (simulated time is deterministic, so these are
// exact across machines; the floor is the PR's >= 1.5x acceptance bar).
// Pass -batching "" to skip the batching report (e.g. for historical
// baselines).
//
// From BENCH_engine.json, the event-kernel gates: a dispatch-rate floor
// on the ladder/record path (events per second against the baseline)
// and the 0-allocs/op canary for the steady-state loop. On a single-CPU
// runner the parallel-speedup comparisons are skipped — the reports
// record "skipped_single_cpu" instead of a number that would only
// measure goroutine-scheduling noise. Pass -engine "" to skip.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the BENCH_parallel.json schema written by
// BenchmarkParallelFigure14 (parallel_bench_test.go). The batching_*
// fields additionally appear in the committed baseline, where they gate
// BENCH_batching.json (see batchingReport).
type report struct {
	NumCPU              int     `json:"num_cpu"`
	GridCells           int     `json:"grid_cells"`
	SerialSec           float64 `json:"serial_sec"`
	ParallelSec         float64 `json:"parallel_sec"`
	Speedup             float64 `json:"speedup"`
	SpeedupNote         string  `json:"speedup_note,omitempty"`
	FlashOpsAllocsPerOp float64 `json:"flashops_allocs_per_op"`
	// Baseline-only: simulated-IOPS floors for the batching ablation.
	BatchingDisabledIOPS float64 `json:"batching_disabled_iops,omitempty"`
	BatchingEnabledIOPS  float64 `json:"batching_enabled_iops,omitempty"`
	BatchingMinSpeedup   float64 `json:"batching_min_speedup,omitempty"`
	// Baseline-only: event-kernel gates for BENCH_engine.json (see
	// engineReport). EngineAllocsPerOp is expected to stay exactly 0.
	EngineEventsPerSec      float64 `json:"engine_events_per_sec,omitempty"`
	EngineAllocsPerOp       float64 `json:"engine_allocs_per_op"`
	EngineMinShardedSpeedup float64 `json:"engine_min_sharded_speedup,omitempty"`
}

// engineReport mirrors the BENCH_engine.json schema written by
// BenchmarkEventKernel (engine_bench_test.go).
type engineReport struct {
	NumCPU             int     `json:"num_cpu"`
	EventsPerSecHeap   float64 `json:"events_per_sec_heap"`
	EventsPerSecLadder float64 `json:"events_per_sec_ladder"`
	EngineAllocsPerOp  float64 `json:"engine_allocs_per_op"`
	ShardedSpeedup     float64 `json:"sharded_speedup"`
	ShardedNote        string  `json:"sharded_note"`
}

// batchingReport mirrors the BENCH_batching.json schema written by
// BenchmarkLockBatching (batching_bench_test.go).
type batchingReport struct {
	DisabledIOPS float64 `json:"batching_disabled_iops"`
	EnabledIOPS  float64 `json:"batching_enabled_iops"`
	Speedup      float64 `json:"batching_speedup"`
}

// cellsPerSec converts a campaign wall-clock into throughput.
func (r report) cellsPerSec(sec float64) float64 {
	if sec <= 0 {
		return 0
	}
	return float64(r.GridCells) / sec
}

// compare returns one message per guarded quantity that regressed beyond
// threshold (a fraction: 0.20 means "more than 20% worse than baseline").
func compare(baseline, fresh report, threshold float64) []string {
	var bad []string
	check := func(name string, base, got float64, lowerIsBetter bool) {
		if base <= 0 {
			// No ratio to take. A zero-alloc baseline is still a guarantee
			// worth keeping: regressing it to real allocations fails.
			if lowerIsBetter && got > 0.5 {
				bad = append(bad, fmt.Sprintf("%s: baseline %.3f, fresh %.3f", name, base, got))
				fmt.Printf("%-28s baseline %10.3f   fresh %10.3f   REGRESSED\n", name, base, got)
			}
			return
		}
		var regressed bool
		var ratio float64
		if lowerIsBetter {
			ratio = got / base
			regressed = got > base*(1+threshold)
		} else {
			ratio = base / got
			regressed = got < base*(1-threshold)
		}
		status := "ok"
		if regressed {
			status = "REGRESSED"
			bad = append(bad, fmt.Sprintf("%s: baseline %.3f, fresh %.3f (%.0f%% worse)",
				name, base, got, (ratio-1)*100))
		}
		fmt.Printf("%-28s baseline %10.3f   fresh %10.3f   %s\n", name, base, got, status)
	}
	check("serial cells/sec", baseline.cellsPerSec(baseline.SerialSec), fresh.cellsPerSec(fresh.SerialSec), false)
	check("parallel-4 cells/sec", baseline.cellsPerSec(baseline.ParallelSec), fresh.cellsPerSec(fresh.ParallelSec), false)
	check("flash-op allocs/op", baseline.FlashOpsAllocsPerOp, fresh.FlashOpsAllocsPerOp, true)
	// The parallel-speedup floor only means something with real
	// parallelism: on a single-CPU runner the report records a note
	// instead of a number, and the comparison is skipped.
	if fresh.SpeedupNote != "" || fresh.NumCPU == 1 {
		fmt.Printf("%-28s skipped (single CPU)\n", "parallel speedup")
	} else if baseline.Speedup > 1 {
		check("parallel speedup", baseline.Speedup, fresh.Speedup, false)
	}
	return bad
}

// compareEngine guards the event-kernel dispatch rate and its
// 0-allocs/op canary. The sharded-speedup floor is honored only when
// the fresh report measured one (multi-CPU runner, no skip note).
func compareEngine(baseline report, fresh engineReport, threshold float64) []string {
	var bad []string
	if base := baseline.EngineEventsPerSec; base > 0 {
		status := "ok"
		if fresh.EventsPerSecLadder < base*(1-threshold) {
			status = "REGRESSED"
			bad = append(bad, fmt.Sprintf("engine events/sec: baseline %.0f, fresh %.0f (%.0f%% worse)",
				base, fresh.EventsPerSecLadder, (base/fresh.EventsPerSecLadder-1)*100))
		}
		fmt.Printf("%-28s baseline %10.0f   fresh %10.0f   %s\n",
			"engine events/sec", base, fresh.EventsPerSecLadder, status)
	}
	// Zero-alloc canary: the baseline guarantee is exact, not a ratio.
	status := "ok"
	if fresh.EngineAllocsPerOp > baseline.EngineAllocsPerOp+0.5 {
		status = "REGRESSED"
		bad = append(bad, fmt.Sprintf("engine allocs/op: baseline %.3f, fresh %.3f",
			baseline.EngineAllocsPerOp, fresh.EngineAllocsPerOp))
	}
	fmt.Printf("%-28s baseline %10.3f   fresh %10.3f   %s\n",
		"engine allocs/op", baseline.EngineAllocsPerOp, fresh.EngineAllocsPerOp, status)
	if fresh.ShardedNote != "" || fresh.NumCPU == 1 {
		fmt.Printf("%-28s skipped (%s)\n", "engine sharded speedup", fresh.ShardedNote)
	} else if min := baseline.EngineMinShardedSpeedup; min > 0 {
		status := "ok"
		if fresh.ShardedSpeedup < min {
			status = "REGRESSED"
			bad = append(bad, fmt.Sprintf("engine sharded speedup floor: need >= %.2fx, fresh %.2fx",
				min, fresh.ShardedSpeedup))
		}
		fmt.Printf("%-28s floor    %10.3f   fresh %10.3f   %s\n",
			"engine sharded speedup", min, fresh.ShardedSpeedup, status)
	}
	return bad
}

// compareBatching guards the amortization metrics. Simulated IOPS is
// deterministic, so the threshold only absorbs intentional model
// changes, and the speedup floor is an absolute acceptance bar rather
// than a relative one.
func compareBatching(baseline report, fresh batchingReport, threshold float64) []string {
	var bad []string
	check := func(name string, base, got float64) {
		if base <= 0 {
			return
		}
		status := "ok"
		if got < base*(1-threshold) {
			status = "REGRESSED"
			bad = append(bad, fmt.Sprintf("%s: baseline %.3f, fresh %.3f (%.0f%% worse)",
				name, base, got, (base/got-1)*100))
		}
		fmt.Printf("%-28s baseline %10.3f   fresh %10.3f   %s\n", name, base, got, status)
	}
	check("batching-off sim-IOPS", baseline.BatchingDisabledIOPS, fresh.DisabledIOPS)
	check("batching-on sim-IOPS", baseline.BatchingEnabledIOPS, fresh.EnabledIOPS)
	if min := baseline.BatchingMinSpeedup; min > 0 {
		status := "ok"
		if fresh.Speedup < min {
			status = "REGRESSED"
			bad = append(bad, fmt.Sprintf("batching speedup floor: need >= %.2fx, fresh %.2fx",
				min, fresh.Speedup))
		}
		fmt.Printf("%-28s floor    %10.3f   fresh %10.3f   %s\n", "batching speedup", min, fresh.Speedup, status)
	}
	return bad
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	baselinePath := flag.String("baseline", "ci/bench_baseline.json", "committed baseline report")
	freshPath := flag.String("fresh", "BENCH_parallel.json", "freshly generated report")
	batchingPath := flag.String("batching", "BENCH_batching.json", "freshly generated batching report ('' skips)")
	enginePath := flag.String("engine", "BENCH_engine.json", "freshly generated event-kernel report ('' skips)")
	threshold := flag.Float64("threshold", 0.20, "allowed regression fraction")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	bad := compare(baseline, fresh, *threshold)
	if *batchingPath != "" {
		var batching batchingReport
		data, err := os.ReadFile(*batchingPath)
		if err == nil {
			err = json.Unmarshal(data, &batching)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		bad = append(bad, compareBatching(baseline, batching, *threshold)...)
	}
	if *enginePath != "" {
		var engine engineReport
		data, err := os.ReadFile(*enginePath)
		if err == nil {
			err = json.Unmarshal(data, &engine)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		bad = append(bad, compareEngine(baseline, engine, *threshold)...)
	}
	if len(bad) > 0 {
		fmt.Fprintln(os.Stderr, "benchguard: throughput regression beyond threshold:")
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, "  -", m)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: within threshold")
}
