package main

import "testing"

func TestCompare(t *testing.T) {
	base := report{GridCells: 4, SerialSec: 4, ParallelSec: 1, FlashOpsAllocsPerOp: 1.0}
	cases := []struct {
		name  string
		fresh report
		bad   int
	}{
		{"identical", base, 0},
		{"within threshold", report{GridCells: 4, SerialSec: 4.5, ParallelSec: 1.1, FlashOpsAllocsPerOp: 1.1}, 0},
		{"serial regressed", report{GridCells: 4, SerialSec: 6, ParallelSec: 1, FlashOpsAllocsPerOp: 1.0}, 1},
		{"parallel regressed", report{GridCells: 4, SerialSec: 4, ParallelSec: 1.5, FlashOpsAllocsPerOp: 1.0}, 1},
		{"allocs regressed", report{GridCells: 4, SerialSec: 4, ParallelSec: 1, FlashOpsAllocsPerOp: 1.5}, 1},
		{"everything regressed", report{GridCells: 4, SerialSec: 8, ParallelSec: 3, FlashOpsAllocsPerOp: 2.0}, 3},
		// A bigger grid at proportionally bigger wall clock is the same
		// throughput, not a regression.
		{"grid resized", report{GridCells: 8, SerialSec: 8, ParallelSec: 2, FlashOpsAllocsPerOp: 1.0}, 0},
		// Faster is never a regression.
		{"improved", report{GridCells: 4, SerialSec: 2, ParallelSec: 0.5, FlashOpsAllocsPerOp: 0.2}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := compare(base, tc.fresh, 0.20); len(got) != tc.bad {
				t.Fatalf("compare flagged %d regressions (%v), want %d", len(got), got, tc.bad)
			}
		})
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	// A zeroed baseline (e.g. a hand-written placeholder) guards nothing
	// rather than dividing by zero or failing spuriously.
	if got := compare(report{}, report{GridCells: 4, SerialSec: 4}, 0.20); len(got) != 0 {
		t.Fatalf("zero baseline flagged %v", got)
	}
}

func TestCompareZeroAllocBaselineStillGuards(t *testing.T) {
	base := report{GridCells: 4, SerialSec: 4, ParallelSec: 1, FlashOpsAllocsPerOp: 0}
	fresh := base
	fresh.FlashOpsAllocsPerOp = 1.2
	if got := compare(base, fresh, 0.20); len(got) != 1 {
		t.Fatalf("zero-alloc baseline did not flag alloc creep: %v", got)
	}
}

func TestCompareBatching(t *testing.T) {
	base := report{
		BatchingDisabledIOPS: 355,
		BatchingEnabledIOPS:  595,
		BatchingMinSpeedup:   1.5,
	}
	cases := []struct {
		name  string
		fresh batchingReport
		bad   int
	}{
		{"identical", batchingReport{DisabledIOPS: 355, EnabledIOPS: 595, Speedup: 1.68}, 0},
		{"within threshold", batchingReport{DisabledIOPS: 300, EnabledIOPS: 500, Speedup: 1.67}, 0},
		{"enabled regressed", batchingReport{DisabledIOPS: 355, EnabledIOPS: 400, Speedup: 1.6}, 1},
		{"speedup below floor", batchingReport{DisabledIOPS: 355, EnabledIOPS: 500, Speedup: 1.41}, 1},
		{"both", batchingReport{DisabledIOPS: 200, EnabledIOPS: 210, Speedup: 1.05}, 3},
		// Faster is never a regression.
		{"improved", batchingReport{DisabledIOPS: 500, EnabledIOPS: 1200, Speedup: 2.4}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := compareBatching(base, tc.fresh, 0.20); len(got) != tc.bad {
				t.Fatalf("compareBatching flagged %d regressions (%v), want %d", len(got), got, tc.bad)
			}
		})
	}
}

func TestCompareBatchingZeroBaseline(t *testing.T) {
	// A baseline predating the batching metrics guards nothing for them.
	fresh := batchingReport{DisabledIOPS: 355, EnabledIOPS: 595, Speedup: 1.68}
	if got := compareBatching(report{}, fresh, 0.20); len(got) != 0 {
		t.Fatalf("pre-batching baseline flagged %v", got)
	}
}
