package main

import (
	"encoding/json"
	"testing"
)

func fp(v float64) *float64 { return &v }

func TestCompare(t *testing.T) {
	base := report{GridCells: 4, SerialSec: 4, ParallelSec: 1, FlashOpsAllocsPerOp: 1.0}
	cases := []struct {
		name  string
		fresh report
		bad   int
	}{
		{"identical", base, 0},
		{"within threshold", report{GridCells: 4, SerialSec: 4.5, ParallelSec: 1.1, FlashOpsAllocsPerOp: 1.1}, 0},
		{"serial regressed", report{GridCells: 4, SerialSec: 6, ParallelSec: 1, FlashOpsAllocsPerOp: 1.0}, 1},
		{"parallel regressed", report{GridCells: 4, SerialSec: 4, ParallelSec: 1.5, FlashOpsAllocsPerOp: 1.0}, 1},
		{"allocs regressed", report{GridCells: 4, SerialSec: 4, ParallelSec: 1, FlashOpsAllocsPerOp: 1.5}, 1},
		{"everything regressed", report{GridCells: 4, SerialSec: 8, ParallelSec: 3, FlashOpsAllocsPerOp: 2.0}, 3},
		// A bigger grid at proportionally bigger wall clock is the same
		// throughput, not a regression.
		{"grid resized", report{GridCells: 8, SerialSec: 8, ParallelSec: 2, FlashOpsAllocsPerOp: 1.0}, 0},
		// Faster is never a regression.
		{"improved", report{GridCells: 4, SerialSec: 2, ParallelSec: 0.5, FlashOpsAllocsPerOp: 0.2}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := compare(base, tc.fresh, 0.20); len(got) != tc.bad {
				t.Fatalf("compare flagged %d regressions (%v), want %d", len(got), got, tc.bad)
			}
		})
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	// A zeroed baseline (e.g. a hand-written placeholder) guards nothing
	// rather than dividing by zero or failing spuriously.
	if got := compare(report{}, report{GridCells: 4, SerialSec: 4}, 0.20); len(got) != 0 {
		t.Fatalf("zero baseline flagged %v", got)
	}
}

func TestCompareZeroAllocBaselineStillGuards(t *testing.T) {
	base := report{GridCells: 4, SerialSec: 4, ParallelSec: 1, FlashOpsAllocsPerOp: 0}
	fresh := base
	fresh.FlashOpsAllocsPerOp = 1.2
	if got := compare(base, fresh, 0.20); len(got) != 1 {
		t.Fatalf("zero-alloc baseline did not flag alloc creep: %v", got)
	}
}

func TestSpeedupSchemaShapes(t *testing.T) {
	// Legacy reports wrote a literal 0 next to the skip note; current
	// ones omit the field entirely. Both must parse, and in both the note
	// (not the number) decides the skip.
	var legacy, current report
	if err := json.Unmarshal([]byte(`{"num_cpu":1,"speedup":0,"speedup_note":"skipped_single_cpu"}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Speedup == nil || *legacy.Speedup != 0 || legacy.SpeedupNote != "skipped_single_cpu" {
		t.Fatalf("legacy shape parsed as %+v", legacy)
	}
	if err := json.Unmarshal([]byte(`{"num_cpu":1,"speedup_note":"skipped_single_cpu"}`), &current); err != nil {
		t.Fatal(err)
	}
	if current.Speedup != nil {
		t.Fatalf("omitted speedup parsed as %v", *current.Speedup)
	}
	for name, fresh := range map[string]report{"legacy": legacy, "current": current} {
		if got := compare(report{Speedup: fp(3)}, fresh, 0.20); len(got) != 0 {
			t.Fatalf("%s single-CPU skip flagged %v", name, got)
		}
	}
}

func TestCompareSpeedupGate(t *testing.T) {
	base := report{Speedup: fp(3)}
	cases := []struct {
		name  string
		fresh report
		bad   int
	}{
		{"single-cpu skip", report{NumCPU: 1, SpeedupNote: "skipped_single_cpu"}, 0},
		{"unknown-cpu skip", report{}, 0},
		// A multi-CPU runner that fails to measure is a regression, in
		// either schema shape — the silent-skip-forever failure mode.
		{"multi-cpu with note", report{NumCPU: 4, Speedup: fp(0), SpeedupNote: "skipped_single_cpu"}, 1},
		{"multi-cpu missing", report{NumCPU: 4}, 1},
		{"multi-cpu below baseline", report{NumCPU: 4, Speedup: fp(2.0)}, 1},
		{"multi-cpu healthy", report{NumCPU: 4, Speedup: fp(2.9)}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := compare(base, tc.fresh, 0.20); len(got) != tc.bad {
				t.Fatalf("compare flagged %d regressions (%v), want %d", len(got), got, tc.bad)
			}
		})
	}
}

func TestCompareEngineCells(t *testing.T) {
	base := report{
		EngineMinShardedSpeedup:  1.1,
		EngineMinSharded4Speedup: 2.0,
		EngineMinSharded8Speedup: 4.0,
	}
	cases := []struct {
		name  string
		fresh engineReport
		bad   int
	}{
		{"single cpu skips all cells", engineReport{NumCPU: 1, ShardedNote: "skipped_single_cpu"}, 0},
		{"4 cpus gates 2 and 4 only", engineReport{NumCPU: 4, ShardedSpeedup: fp(1.3), Sharded4Speedup: fp(2.4)}, 0},
		{"4 cpus unmeasured", engineReport{NumCPU: 4, ShardedNote: "skipped_single_cpu"}, 2},
		{"8 cpus healthy", engineReport{NumCPU: 8, ShardedSpeedup: fp(1.3), Sharded4Speedup: fp(2.4), Sharded8Speedup: fp(4.5)}, 0},
		{"8 cpus below 8-shard floor", engineReport{NumCPU: 8, ShardedSpeedup: fp(1.3), Sharded4Speedup: fp(2.4), Sharded8Speedup: fp(3.2)}, 1},
		{"8 cpus missing 8-shard cell", engineReport{NumCPU: 8, ShardedSpeedup: fp(1.3), Sharded4Speedup: fp(2.4)}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := compareEngine(base, tc.fresh, 0.20); len(got) != tc.bad {
				t.Fatalf("compareEngine flagged %d regressions (%v), want %d", len(got), got, tc.bad)
			}
		})
	}
}

func TestCompareSmoke(t *testing.T) {
	base := report{SmokeBudgetSec: 30}
	if got := compareSmoke(base, 35); len(got) != 0 {
		t.Fatalf("within-allowance smoke flagged %v", got)
	}
	if got := compareSmoke(base, 40); len(got) != 1 {
		t.Fatalf("over-budget smoke flagged %v, want 1", got)
	}
	if got := compareSmoke(report{}, 40); len(got) != 0 {
		t.Fatalf("budget-less baseline flagged %v", got)
	}
}

func TestCompareBatching(t *testing.T) {
	base := report{
		BatchingDisabledIOPS: 355,
		BatchingEnabledIOPS:  595,
		BatchingMinSpeedup:   1.5,
	}
	cases := []struct {
		name  string
		fresh batchingReport
		bad   int
	}{
		{"identical", batchingReport{DisabledIOPS: 355, EnabledIOPS: 595, Speedup: 1.68}, 0},
		{"within threshold", batchingReport{DisabledIOPS: 300, EnabledIOPS: 500, Speedup: 1.67}, 0},
		{"enabled regressed", batchingReport{DisabledIOPS: 355, EnabledIOPS: 400, Speedup: 1.6}, 1},
		{"speedup below floor", batchingReport{DisabledIOPS: 355, EnabledIOPS: 500, Speedup: 1.41}, 1},
		{"both", batchingReport{DisabledIOPS: 200, EnabledIOPS: 210, Speedup: 1.05}, 3},
		// Faster is never a regression.
		{"improved", batchingReport{DisabledIOPS: 500, EnabledIOPS: 1200, Speedup: 2.4}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := compareBatching(base, tc.fresh, 0.20); len(got) != tc.bad {
				t.Fatalf("compareBatching flagged %d regressions (%v), want %d", len(got), got, tc.bad)
			}
		})
	}
}

func TestCompareBatchingZeroBaseline(t *testing.T) {
	// A baseline predating the batching metrics guards nothing for them.
	fresh := batchingReport{DisabledIOPS: 355, EnabledIOPS: 595, Speedup: 1.68}
	if got := compareBatching(report{}, fresh, 0.20); len(got) != 0 {
		t.Fatalf("pre-batching baseline flagged %v", got)
	}
}
