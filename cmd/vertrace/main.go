// Command vertrace regenerates the paper's §3 data-versioning study:
// Table 1 (VAF and T_insecure for uni-version and multi-version files)
// and the Figure 4 time plots (N_valid / N_invalid of representative
// files over logical time).
//
// Usage:
//
//	vertrace [-workloads Mobile,MailServer,DBServer] [-capacity-mib N]
//	         [-writes-gib N] [-timeplot] [-seed S] [-parallel N]
//
// -parallel runs the per-workload studies concurrently (default: one
// worker per CPU); each study is independently seeded, so the table is
// bit-identical to a serial run.
//
// The paper uses a 16-GiB device with 4-KiB pages and 64 GiB of writes;
// the defaults here are scaled down for minute-scale runs and can be
// raised with the flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/vertrace"
	"repro/internal/workload"
)

func main() {
	workloads := flag.String("workloads", "Mobile,MailServer,DBServer", "comma-separated workloads")
	capacityMiB := flag.Int64("capacity-mib", 256, "device capacity in MiB (paper: 16384)")
	writesMiB := flag.Int64("writes-mib", 1024, "study write volume in MiB (paper: 65536)")
	timeplot := flag.Bool("timeplot", false, "also emit Fig. 4 time plots for representative files")
	seed := flag.Int64("seed", 11, "workload seed")
	parallelN := flag.Int("parallel", 0, "worker count for the per-workload studies (<=0: one per CPU)")
	flag.Parse()

	const pageBytes = 4096
	capacityPages := *capacityMiB * 1024 * 1024 / pageBytes
	studyPages := uint64(*writesMiB * 1024 * 1024 / pageBytes)

	fmt.Println("=== Table 1: data versioning (VAF and T_insecure) ===")
	fmt.Printf("device %d MiB, 4-KiB pages, 75%% prefill, %d MiB written\n\n", *capacityMiB, *writesMiB)
	fmt.Printf("%-12s | %27s | %27s\n", "", "uni-version (UV) files", "multi-version (MV) files")
	fmt.Printf("%-12s | %6s %6s %6s %6s | %6s %6s %6s %6s\n",
		"Workload", "VAFavg", "VAFmax", "Tavg", "Tmax", "VAFavg", "VAFmax", "Tavg", "Tmax")

	var profiles []workload.Profile
	for _, name := range strings.Split(*workloads, ",") {
		prof, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "vertrace:", err)
			os.Exit(2)
		}
		profiles = append(profiles, prof)
	}

	cfgs := make([]vertrace.StudyConfig, len(profiles))
	for i, prof := range profiles {
		cfgs[i] = vertrace.StudyConfig{
			Workload:      prof,
			CapacityPages: capacityPages,
			PageBytes:     pageBytes,
			FillFraction:  0.75,
			StudyPages:    studyPages,
			Seed:          *seed,
		}
	}
	results, err := vertrace.RunStudies(cfgs, *parallelN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vertrace:", err)
		os.Exit(1)
	}

	for i, res := range results {
		row := res.Row
		fmt.Printf("%-12s | %6.2f %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f %6.2f\n",
			row.Workload,
			row.UV.VAFAvg, row.UV.VAFMax, row.UV.TInsecAvg, row.UV.TInsecMax,
			row.MV.VAFAvg, row.MV.VAFMax, row.MV.TInsecAvg, row.MV.TInsecMax)

		if *timeplot {
			emitTimeplots(profiles[i], capacityPages, studyPages, *seed, res)
		}
	}
	fmt.Println("\npaper's Table 1 (for shape comparison):")
	fmt.Println("  Mobile      UV 0.24/1.5  0.02/0.43 | MV 1.0/2.0   0.41/2.3")
	fmt.Println("  MailServer  UV 0.22/1.0  0.021/1.7 | MV 0.93/2.4  0.50/2.5")
	fmt.Println("  DBServer    UV 0.005/.24 0.52/2.6  | MV 3.2/7.8   3.5/3.5")
}

// emitTimeplots reruns the study (same seed -> identical history) with
// the top UV and MV files watched, and prints their downsampled
// N_valid/N_invalid series (Fig. 4).
func emitTimeplots(prof workload.Profile, capacityPages int64, studyPages uint64, seed int64, first *vertrace.StudyResult) {
	var watch []uint64
	for _, f := range vertrace.TopFiles(first.Files, false, 1) {
		watch = append(watch, f.FileID)
	}
	for _, f := range vertrace.TopFiles(first.Files, true, 1) {
		watch = append(watch, f.FileID)
	}
	if len(watch) == 0 {
		return
	}
	res, err := vertrace.RunStudy(vertrace.StudyConfig{
		Workload:      prof,
		CapacityPages: capacityPages,
		PageBytes:     4096,
		FillFraction:  0.75,
		StudyPages:    studyPages,
		Seed:          seed,
		WatchIDs:      watch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vertrace: timeplot rerun:", err)
		return
	}
	fmt.Printf("\n--- Fig. 4 time plots (%s) ---\n", prof.Name)
	for _, ws := range res.Watched {
		fmt.Printf("file %d:\n", ws.FileID)
		fmt.Println("  t, N_valid, N_invalid")
		valid := ws.Valid.Downsample(24)
		invalid := ws.Invalid.Downsample(24)
		n := len(valid)
		if len(invalid) < n {
			n = len(invalid)
		}
		for i := 0; i < n; i++ {
			fmt.Printf("  %d, %.0f, %.0f\n", valid[i].T, valid[i].V, invalid[i].V)
		}
	}
}
