// Command tracegen records a Table 2 workload as a replayable block-I/O
// trace file (the binary format of internal/blockio), and can summarize
// or replay existing traces against any of the five device
// configurations.
//
// Usage:
//
//	tracegen -workload MailServer -pages 100000 -out mail.trace
//	tracegen -summarize mail.trace
//	tracegen -replay mail.trace -policy secSSD
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blockio"
	"repro/internal/experiment"
	"repro/internal/nand"
	"repro/internal/nand/vth"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "MailServer", "Table 2 workload to record")
	pages := flag.Uint64("pages", 100_000, "host pages to write while recording")
	capacity := flag.Int64("capacity-pages", 64*1024, "virtual device capacity in pages")
	pageBytes := flag.Int("page-bytes", 16*1024, "logical page size")
	secure := flag.Float64("secure", 1.0, "secured-data fraction")
	seed := flag.Int64("seed", 7, "generator seed")
	out := flag.String("out", "", "trace file to write")
	summarize := flag.String("summarize", "", "trace file to summarize")
	replay := flag.String("replay", "", "trace file to replay")
	policy := flag.String("policy", "secSSD", "device configuration for -replay")
	flag.Parse()

	switch {
	case *summarize != "":
		doSummarize(*summarize)
	case *replay != "":
		doReplay(*replay, *policy)
	case *out != "":
		doRecord(*wl, *capacity, *pageBytes, *pages, *secure, *seed, *out)
	default:
		fmt.Fprintln(os.Stderr, "tracegen: one of -out, -summarize, -replay is required")
		os.Exit(2)
	}
}

func doRecord(wl string, capacity int64, pageBytes int, pages uint64, secure float64, seed int64, out string) {
	prof, err := workload.ByName(wl)
	check(err)
	trace, err := workload.Record(prof, capacity, pageBytes, pages, secure, seed)
	check(err)
	f, err := os.Create(out)
	check(err)
	defer f.Close()
	n, err := trace.WriteTo(f)
	check(err)
	s := trace.Summarize()
	fmt.Printf("recorded %s: %d requests (%d reads, %d writes, %d trims), %d bytes\n",
		out, len(trace.Requests), s.Reads, s.Writes, s.Trims, n)
}

func doSummarize(path string) {
	trace := load(path)
	s := trace.Summarize()
	fmt.Printf("trace %q: page size %d bytes\n", trace.Name, trace.PageBytes)
	fmt.Printf("  requests: %d reads, %d writes (%d insecure), %d trims\n",
		s.Reads, s.Writes, s.InsecureWrites, s.Trims)
	fmt.Printf("  pages:    %d read, %d written, %d trimmed\n",
		s.ReadPages, s.WrittenPages, s.TrimmedPages)
	fmt.Printf("  r:w ratio %.3f, write sizes %d..%d pages\n",
		s.ReadWriteRatio(), s.MinWrite, s.MaxWrite)
}

func doReplay(path, policyName string) {
	trace := load(path)
	policy, err := experiment.PolicyByName(policyName)
	check(err)
	dev, err := ssd.New(ssd.Config{
		Channels:        2,
		ChipsPerChannel: 4,
		Chip: nand.Geometry{
			Blocks:          96,
			WLsPerBlock:     64,
			CellKind:        vth.TLC,
			PageBytes:       trace.PageBytes,
			FlagCells:       9,
			EnduranceCycles: 1000,
		},
		OverProvision: 0.10,
		Policy:        policy,
		Seed:          1,
	})
	check(err)
	n, err := dev.Replay(trace)
	check(err)
	r := dev.Report()
	fmt.Printf("replayed %d/%d requests on %s\n", n, len(trace.Requests), policyName)
	fmt.Printf("  IOPS %.0f, WAF %.3f, latency p50/p99 %.0f/%.0f µs\n",
		r.IOPS, r.WAF, r.LatencyP50, r.LatencyP99)
	fmt.Printf("  flash ops: %d programs, %d erases, %d pLocks, %d bLocks, %d scrubs\n",
		r.Stats.FlashPrograms, r.Stats.Erases, r.Stats.PLocks, r.Stats.BLocks, r.Stats.Scrubs)
}

func load(path string) *blockio.Trace {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	trace, err := blockio.ReadTrace(f)
	check(err)
	return trace
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
