// Command secssd-bench regenerates the paper's system-level evaluation:
// Figure 14(a) (normalized IOPS), Figure 14(b) (normalized WAF),
// Figure 14(c) (IOPS vs. secured-data fraction), and the §1 headline
// aggregates.
//
// Usage:
//
//	secssd-bench [-fig 14a|14b|14c|headline|ablation|all]
//	             [-scale small|default|paper] [-parallel N]
//	             [-workloads MailServer,DBServer,FileServer,Mobile]
//	             [-planes N] [-no-cache-pipeline]
//	             [-batch] [-batch-deadline US] [-batch-threshold N]
//	             [-shard-channels N] [-shard-stats lanes.json]
//	             [-fault-rate R] [-fault-seed S] [-study-pages N]
//	             [-csv] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//	             [-mutexprofile mutex.prof] [-blockprofile block.prof]
//
// -planes stripes writes over N planes per chip with shared-pulse
// multi-plane commands; -batch enables wordline-aware pLock batching
// (one SBPI pulse per wordline instead of per page), with
// -batch-deadline bounding how long a partial wordline group may defer
// (µs, 0 = flush at every request) and -batch-threshold force-flushing
// the queue at N pages. -fig ablation runs the amortization ladder
// (disabled → pipelined → batched) on the Mobile workload.
//
// -fault-rate enables deterministic fault injection: every program,
// erase, pLock, and bLock fails with probability R (scaled by per-block
// wear), and reads run at a raw bit-error rate of R × the ECC limit. The
// fault schedule is a pure function of -fault-seed (default: the run
// seed), so any campaign result is bit-reproducible.
//
// -parallel runs the independent workload×policy simulations on N
// workers (default: one per CPU); results are bit-identical to serial.
//
// -shard-channels parallelizes WITHIN each simulated device: chip-state
// mutation is deferred onto N worker lanes (chips partitioned channel-
// major) while the coordinator computes the timing model. Output is
// bit-identical to -shard-channels 0, and it composes with -fault-rate:
// the coordinator's fault oracle pre-decides every verdict in serial
// call order, so the injected schedule is bit-identical too.
// -shard-stats (requires -shard-channels > 0) runs a single
// workload×policy cell and writes the per-lane utilization counters and
// chip→lane map as JSON — the first thing to inspect when a sharded run
// fails to scale. -study-pages overrides the scale's measured write
// volume (the CI wall-clock smoke uses it to time a reduced
// default-scale run).
//
// Tracing mode (runs ONE workload×policy instead of the figure sweep):
//
//	secssd-bench -trace run.trace.json [-trace-jsonl run.jsonl]
//	             [-stats-json run.stats.json] [-trace-policy secSSD]
//	             [-openmetrics run.om] [-audit-json run.audit.json]
//	             [-stats-stream run.stream.jsonl] [-stats-interval US]
//	             [-scale small] [-workloads MailServer]
//
// The -trace file is Chrome trace_event JSON: open it at
// ui.perfetto.dev or chrome://tracing to see every NAND operation laid
// out per chip and channel, with GC passes and live gauges alongside.
//
// -openmetrics writes the full telemetry surface in the OpenMetrics /
// Prometheus text exposition. -stats-stream captures a periodic
// telemetry sample (one JSONL StreamPoint per -stats-interval µs of
// simulated time, default 10 ms). -audit-json writes the sanitization
// audit: the provenance ledger's counters, the T_insecure phase
// breakdown, and the end-of-run verifier report listing any secured
// copy still invalidated but not destroyed.
//
// Attack mode (runs the adversarial forensics matrix instead of the
// figure sweep):
//
//	secssd-bench -attack-json scores.json [-attack-verify] [-power-cut N]
//
// The matrix plays the §5.1 attacker (raw chip dump, retention-aided
// read, power-cut-then-dump) against every policy and scores
// recoverable secured bytes, cross-checked against the audit ledger.
// -power-cut N restricts the matrix to the power-cut scenario with the
// cut striking the Nth sanitize operation of the delete. -attack-verify
// exits nonzero unless every sanitizing policy recovers zero bytes AND
// the baseline control leaks (a toothless control fails too); this is
// the CI forensics gate.
//
// Absolute IOPS values come from the emulated timing model; the paper's
// claims are about the normalized shape, which is what the tables print.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/attack"
	"repro/internal/audit"
	"repro/internal/experiment"
	"repro/internal/ftl"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "14a, 14b, 14c, headline, ablation, or all")
	scaleName := flag.String("scale", "default", "small, default, or paper")
	parallelN := flag.Int("parallel", 0, "worker count for independent simulations (<=0: one per CPU)")
	workloads := flag.String("workloads", "", "comma-separated subset of workloads (default all four)")
	planes := flag.Int("planes", 0, "planes per chip (0/1: single-plane)")
	noCachePipe := flag.Bool("no-cache-pipeline", false, "disable cache-mode transfer/array overlap")
	batch := flag.Bool("batch", false, "enable wordline-aware pLock batching")
	batchDeadline := flag.Int64("batch-deadline", 0, "µs a partial wordline group may defer (0: flush per request)")
	batchThreshold := flag.Int("batch-threshold", 0, "force-flush the lock queue at N pages (0: none)")
	shardChannels := flag.Int("shard-channels", 0, "chip-execution worker lanes per device (0: serial; bit-identical)")
	shardStats := flag.String("shard-stats", "", "run one cell and write per-lane utilization JSON here (needs -shard-channels)")
	studyPages := flag.Int("study-pages", 0, "override the scale's measured write volume (0: scale default)")
	csv := flag.Bool("csv", false, "emit CSV")
	traceFile := flag.String("trace", "", "capture one traced run and write Chrome trace_event JSON here")
	traceJSONL := flag.String("trace-jsonl", "", "also write the raw event log as JSONL here")
	statsJSON := flag.String("stats-json", "", "write the telemetry snapshot JSON here")
	openMetrics := flag.String("openmetrics", "", "write the OpenMetrics text exposition here")
	auditJSON := flag.String("audit-json", "", "write the sanitization audit report JSON here")
	statsStream := flag.String("stats-stream", "", "stream periodic telemetry samples (JSONL) here")
	auditVerify := flag.Bool("audit-verify", false, "exit nonzero if the end-of-run audit verifier finds a live unlocked copy")
	attackJSON := flag.String("attack-json", "", "attack mode: write the attack-score matrix and verdict JSON here")
	attackVerify := flag.Bool("attack-verify", false, "attack mode: exit nonzero unless sanitizers leak nothing and the control leaks")
	powerCut := flag.Uint64("power-cut", 0, "attack mode: power-cut cells only, cutting the Nth sanitize op of the delete")
	statsInterval := flag.Int64("stats-interval", 10_000, "simulated µs between streamed samples")
	tracePolicy := flag.String("trace-policy", "secSSD", "policy for the traced run")
	faultRate := flag.Float64("fault-rate", 0, "per-operation fault-injection probability (0 disables)")
	faultSeed := flag.Int64("fault-seed", 0, "fault-schedule seed (0: use the run seed)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write a heap profile here on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile here on exit")
	blockprofile := flag.String("blockprofile", "", "write a blocking profile here on exit")
	flag.Parse()

	stopProf, err := prof.StartAll(prof.Options{
		CPU: *cpuprofile, Mem: *memprofile,
		Mutex: *mutexprofile, Block: *blockprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "secssd-bench:", err)
		os.Exit(1)
	}
	defer stopProf()
	die := func(code int) {
		stopProf()
		os.Exit(code)
	}

	var sc experiment.Scale
	switch *scaleName {
	case "small":
		sc = experiment.SmallScale()
	case "default":
		sc = experiment.DefaultScale()
	case "paper":
		sc = experiment.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "secssd-bench: unknown scale %q\n", *scaleName)
		die(2)
	}
	sc.FaultRate = *faultRate
	sc.FaultSeed = *faultSeed
	sc.Planes = *planes
	sc.NoCachePipeline = *noCachePipe
	sc.ShardChannels = *shardChannels
	if *studyPages > 0 {
		sc.StudyPages = uint64(*studyPages)
		if sc.SlowPolicyStudyPages > sc.StudyPages {
			sc.SlowPolicyStudyPages = sc.StudyPages
		}
	}
	if *shardStats != "" && sc.ShardChannels <= 0 {
		fmt.Fprintln(os.Stderr, "secssd-bench: -shard-stats requires -shard-channels > 0")
		die(2)
	}
	if *batch {
		sc.LockBatch = ftl.LockBatchConfig{
			Enabled:   true,
			Deadline:  sim.Micros(*batchDeadline),
			Threshold: *batchThreshold,
		}
	}

	// Attack mode replaces the figure sweep entirely: the harness builds
	// its own compact devices, so the bench scale only contributes the
	// run seed.
	if *attackJSON != "" || *attackVerify || *powerCut > 0 {
		pass, err := runAttack(sc.Seed, *powerCut, *attackJSON, *parallelN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "secssd-bench:", err)
			die(1)
		}
		if !pass && *attackVerify {
			die(1)
		}
		return
	}

	// Effective configuration up front: everything below is reproducible
	// from these lines alone.
	if sc.FaultRate > 0 {
		fc := sc.FaultConfig()
		fmt.Printf("# scale=%s seed=%d fault-rate=%g fault-seed=%d\n",
			*scaleName, sc.Seed, sc.FaultRate, fc.Seed)
	} else {
		fmt.Printf("# scale=%s seed=%d fault-rate=0\n", *scaleName, sc.Seed)
	}
	printDeviceConfig(sc, *scaleName)

	var profiles []workload.Profile
	if *workloads != "" {
		for _, name := range strings.Split(*workloads, ",") {
			p, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "secssd-bench:", err)
				die(2)
			}
			profiles = append(profiles, p)
		}
	}

	if *shardStats != "" {
		if err := runShardStats(sc, profiles, *tracePolicy, *shardStats); err != nil {
			fmt.Fprintln(os.Stderr, "secssd-bench:", err)
			die(1)
		}
		return
	}

	if *traceFile != "" || *traceJSONL != "" || *statsJSON != "" ||
		*openMetrics != "" || *auditJSON != "" || *statsStream != "" ||
		*auditVerify {
		art := traceArtifacts{
			chrome:      *traceFile,
			jsonl:       *traceJSONL,
			stats:       *statsJSON,
			openMetrics: *openMetrics,
			audit:       *auditJSON,
			stream:      *statsStream,
			interval:    *statsInterval,
			verify:      *auditVerify,
		}
		if err := runTraced(sc, profiles, *tracePolicy, art); err != nil {
			fmt.Fprintln(os.Stderr, "secssd-bench:", err)
			die(1)
		}
		return
	}

	switch *fig {
	case "all", "14a", "14b", "14c", "headline", "ablation":
	default:
		fmt.Fprintf(os.Stderr, "secssd-bench: unknown figure %q (want 14a, 14b, 14c, headline, ablation, or all)\n", *fig)
		die(2)
	}

	needAB := *fig == "all" || *fig == "14a" || *fig == "14b" || *fig == "headline"
	var rows []experiment.Fig14Row
	if needAB {
		var err error
		rows, err = experiment.Figure14Parallel(sc, profiles, *parallelN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "secssd-bench:", err)
			die(1)
		}
	}
	if *fig == "all" || *fig == "14a" {
		printFig14a(rows, *csv)
	}
	if *fig == "all" || *fig == "14b" {
		printFig14b(rows, *csv)
	}
	if *fig == "all" || *fig == "14c" {
		pts, err := experiment.Figure14cParallel(sc, profiles, nil, *parallelN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "secssd-bench:", err)
			die(1)
		}
		printFig14c(pts, *csv)
	}
	if *fig == "all" || *fig == "headline" {
		printHeadline(experiment.ComputeHeadline(rows))
	}
	if *fig == "all" || *fig == "ablation" {
		cells, err := experiment.BatchingAblation(sc, *parallelN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "secssd-bench:", err)
			die(1)
		}
		printAblation(cells, *csv)
	}
}

// printDeviceConfig prints the full effective device configuration so a
// captured run is interpretable without consulting flags or source.
func printDeviceConfig(sc experiment.Scale, scaleName string) {
	planes := sc.Planes
	if planes < 1 {
		planes = 1
	}
	pipeline := "on"
	if sc.NoCachePipeline {
		pipeline = "off"
	}
	batching := "off"
	if sc.LockBatch.Enabled {
		batching = fmt.Sprintf("on deadline=%v threshold=%d", sc.LockBatch.Deadline, sc.LockBatch.Threshold)
	}
	fmt.Printf("# device: %d channels x %d chips, %d blocks/chip, %d WLs/block (TLC), %d B pages\n",
		experiment.Channels, experiment.ChipsPerChannel, sc.BlocksPerChip, sc.WLsPerBlock, sc.PageBytes)
	fmt.Printf("# parallelism: planes=%d cache-pipeline=%s queue-depth=32 plock-batching=%s shard-channels=%d\n",
		planes, pipeline, batching, sc.ShardChannels)
}

// printAblation prints the amortization ladder's absolute and
// normalized throughput (cells share the scale's workload volume).
func printAblation(cells []experiment.BatchingCell, csv bool) {
	fmt.Println("=== Amortization ablation: Mobile × secSSD ===")
	base := cells[0].Run.IOPS()
	for _, c := range cells {
		s := c.Run.Report.Stats
		norm := 0.0
		if base > 0 {
			norm = c.Run.IOPS() / base
		}
		if csv {
			fmt.Printf("ablation,%s,%.1f,%.4f,%.4f,%d,%d,%d,%d\n",
				c.Label, c.Run.IOPS(), norm, c.Run.WAF(), s.PLocks, s.PLockBatches, s.PLockBatchedPages, s.BLocks)
			continue
		}
		fmt.Printf("  %-10s IOPS %8.0f  (%.2fx)  WAF %.2f  pLocks %6d  batched %5d pulses / %6d pages  bLocks %4d\n",
			c.Label, c.Run.IOPS(), norm, c.Run.WAF(), s.PLocks, s.PLockBatches, s.PLockBatchedPages, s.BLocks)
	}
	fmt.Println()
}

// attackReport is the -attack-json document: every cell's score plus
// the gate verdict.
type attackReport struct {
	Seed    int64          `json:"seed"`
	Scores  []attack.Score `json:"scores"`
	Verdict attack.Verdict `json:"verdict"`
}

// runAttack executes the adversarial forensics matrix, prints the
// scores, optionally writes the JSON artifact, and returns the gate
// verdict.
func runAttack(seed int64, powerCut uint64, jsonPath string, workers int) (bool, error) {
	var cells []attack.Config
	if powerCut > 0 {
		for _, p := range attack.Policies() {
			cells = append(cells, attack.Config{
				Policy:      p,
				Scenario:    attack.ScenarioPowerCut,
				CutAfterOps: powerCut,
				Seed:        seed,
			})
		}
	} else {
		cells = attack.DefaultCells(seed)
	}
	scores, err := attack.Matrix(cells, workers)
	if err != nil {
		return false, err
	}
	verdict := attack.Verify(scores)

	fmt.Printf("=== Attack matrix: §5.1 adversary vs. every policy (seed %d) ===\n", seed)
	for _, s := range scores {
		extra := ""
		if s.Scenario == string(attack.ScenarioPowerCut) {
			extra = fmt.Sprintf("  cut=%v remounted=%v", s.CutFired, s.Remounted)
			if s.CutFired {
				extra = fmt.Sprintf("  cut=%s remounted=%v", s.CutOp, s.Remounted)
			}
		}
		fmt.Printf("  %-32s recovered %7d / %d B on %2d pages  live=%v  audit open=%d clean=%v%s\n",
			s.Label, s.RecoverableBytes, s.SecretBytes, s.HitPages,
			s.LiveIntact, s.OpenAuditCopies, s.AuditClean, extra)
	}
	if verdict.Pass {
		fmt.Printf("verdict: PASS — %d cells, %d baseline control leaks\n", verdict.Cells, verdict.ControlLeaks)
	} else {
		fmt.Printf("verdict: FAIL — %d cells\n", verdict.Cells)
		for _, f := range verdict.Failures {
			fmt.Printf("  - %s\n", f)
		}
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return false, err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(attackReport{Seed: seed, Scores: scores, Verdict: verdict})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return false, err
		}
		fmt.Printf("attack scores written to %s\n", jsonPath)
	}
	return verdict.Pass, nil
}

// shardStatsReport is the -shard-stats document: one cell's identity
// plus the lane utilization snapshot.
type shardStatsReport struct {
	Workload      string         `json:"workload"`
	Policy        string         `json:"policy"`
	ShardChannels int            `json:"shard_channels"`
	Requests      uint64         `json:"requests"`
	Stats         ssd.ShardStats `json:"stats"`
}

// runShardStats executes one workload×policy cell with sharding on and
// writes the per-lane utilization counters — how evenly the deferred
// chip work spread over the worker lanes.
func runShardStats(sc experiment.Scale, profiles []workload.Profile, policyName, path string) error {
	policy, err := experiment.PolicyByName(policyName)
	if err != nil {
		return err
	}
	wl := workload.MailServer()
	if len(profiles) > 0 {
		wl = profiles[0]
	}
	run, stats, err := experiment.ExecuteShardStats(wl, policy, 1.0, sc, nil)
	if err != nil {
		return err
	}
	fmt.Printf("shard stats: %s × %s — %d lanes\n", run.Workload, run.Policy, stats.Lanes)
	var total uint64
	for _, n := range stats.Posted {
		total += n
	}
	for lane, n := range stats.Posted {
		share := 0.0
		if total > 0 {
			share = 100 * float64(n) / float64(total)
		}
		var chips []int
		for chip, l := range stats.LaneOf {
			if l == lane {
				chips = append(chips, chip)
			}
		}
		fmt.Printf("  lane %2d: %9d ops (%5.1f%%)  chips %v\n", lane, n, share, chips)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(shardStatsReport{
		Workload:      run.Workload,
		Policy:        run.Policy,
		ShardChannels: sc.ShardChannels,
		Requests:      run.Report.Requests,
		Stats:         stats,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("shard stats written to %s\n", path)
	return nil
}

// traceArtifacts names the output files of one traced run.
type traceArtifacts struct {
	chrome      string
	jsonl       string
	stats       string
	openMetrics string
	audit       string
	stream      string
	interval    int64 // µs between streamed samples
	verify      bool  // fail the run if the audit verifier is unclean
}

// runTraced executes one workload×policy run with a trace.Recorder
// attached and writes the requested artifacts.
func runTraced(sc experiment.Scale, profiles []workload.Profile, policyName string, art traceArtifacts) error {
	policy, err := experiment.PolicyByName(policyName)
	if err != nil {
		return err
	}
	prof := workload.MailServer()
	if len(profiles) > 0 {
		prof = profiles[0]
	}
	rec := trace.NewRecorder(trace.RecorderConfig{
		Chips:    experiment.Channels * experiment.ChipsPerChannel,
		Channels: experiment.Channels,
	})
	var closeStream func() error
	if art.stream != "" {
		closeStream, err = rec.StreamToFile(art.stream, art.interval)
		if err != nil {
			return err
		}
	}
	run, err := experiment.ExecuteAudited(prof, policy, 1.0, sc, rec)
	if err != nil {
		return err
	}
	fmt.Printf("traced run: %s × %s — %d requests, %d events (%d dropped), horizon %v\n",
		run.Workload, run.Policy, run.Report.Requests, rec.TotalEvents(), rec.Dropped(), rec.Horizon())
	if closeStream != nil {
		if err := closeStream(); err != nil {
			return err
		}
		fmt.Printf("telemetry stream written to %s (every %d µs simulated)\n", art.stream, art.interval)
	}
	if art.chrome != "" {
		if err := rec.WriteChromeFile(art.chrome); err != nil {
			return err
		}
		fmt.Printf("chrome trace written to %s (open at ui.perfetto.dev)\n", art.chrome)
	}
	if art.jsonl != "" {
		if err := rec.WriteJSONLFile(art.jsonl); err != nil {
			return err
		}
		fmt.Printf("event log written to %s\n", art.jsonl)
	}
	if art.stats != "" {
		if err := rec.WriteStatsFile(art.stats); err != nil {
			return err
		}
		fmt.Printf("telemetry snapshot written to %s\n", art.stats)
	}
	if art.openMetrics != "" {
		if err := rec.WriteOpenMetricsFile(art.openMetrics); err != nil {
			return err
		}
		fmt.Printf("openmetrics exposition written to %s\n", art.openMetrics)
	}
	if art.audit != "" {
		if err := writeAuditReport(art.audit, rec); err != nil {
			return err
		}
		fmt.Printf("audit report written to %s\n", art.audit)
	}
	ledger := rec.AuditLedger()
	rep := ledger.Verify(rec.Horizon())
	if rep.Clean() {
		fmt.Printf("audit: %d secrets, %d windows closed, zero live unlocked copies\n",
			rep.Secrets, ledger.Stats(rec.Horizon()).Windows)
	} else {
		fmt.Printf("audit: WARNING — %v\n", rep.Err())
		if art.verify {
			return fmt.Errorf("audit verification failed: %v", rep.Err())
		}
	}
	return nil
}

// auditReport is the -audit-json document: the ledger's counter
// snapshot plus the end-of-run verification.
type auditReport struct {
	Horizon int64              `json:"horizon_us"`
	Stats   audit.Stats        `json:"stats"`
	Verify  audit.VerifyReport `json:"verify"`
}

func writeAuditReport(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(auditReport{
		Horizon: int64(rec.Horizon()),
		Stats:   rec.AuditLedger().Stats(rec.Horizon()),
		Verify:  rec.AuditLedger().Verify(rec.Horizon()),
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

var policyOrder = []string{"erSSD", "scrSSD", "secSSD_nobLock", "secSSD"}

func printFig14a(rows []experiment.Fig14Row, csv bool) {
	fmt.Println("=== Figure 14(a): IOPS normalized to the no-sanitization SSD ===")
	printNormTable(rows, csv, "fig14a", func(r experiment.Fig14Row, p string) float64 { return r.IOPS[p] })
	fmt.Println("  paper: erSSD <= 0.04, scrSSD ~0.34 avg, secSSD ~0.945 avg")
	if !csv {
		fmt.Println("  request latency p50/p99 (ms), baseline vs secSSD:")
		for _, r := range rows {
			base, sec := r.Runs["baseline"].Report, r.Runs["secSSD"].Report
			fmt.Printf("  %-12s base %6.1f/%6.1f   secSSD %6.1f/%6.1f\n",
				r.Workload, base.LatencyP50/1000, base.LatencyP99/1000,
				sec.LatencyP50/1000, sec.LatencyP99/1000)
		}
	}
	fmt.Println()
}

func printFig14b(rows []experiment.Fig14Row, csv bool) {
	fmt.Println("=== Figure 14(b): WAF normalized to the no-sanitization SSD ===")
	printNormTable(rows, csv, "fig14b", func(r experiment.Fig14Row, p string) float64 { return r.WAF[p] })
	fmt.Println("  paper: erSSD up to 320x, scrSSD up to 4.41x, secSSD ~1.0x")
	fmt.Println()
}

func printNormTable(rows []experiment.Fig14Row, csv bool, tag string, get func(experiment.Fig14Row, string) float64) {
	if csv {
		for _, r := range rows {
			for _, p := range policyOrder {
				fmt.Printf("%s,%s,%s,%.4f\n", tag, r.Workload, p, get(r, p))
			}
		}
		return
	}
	fmt.Printf("  %-12s", "workload")
	for _, p := range policyOrder {
		fmt.Printf("%16s", p)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("  %-12s", r.Workload)
		for _, p := range policyOrder {
			fmt.Printf("%16.3f", get(r, p))
		}
		fmt.Println()
	}
}

func printFig14c(pts []experiment.Fig14cPoint, csv bool) {
	fmt.Println("=== Figure 14(c): secSSD IOPS vs. fraction of securely-managed data ===")
	byWorkload := map[string][]experiment.Fig14cPoint{}
	var order []string
	for _, p := range pts {
		if _, seen := byWorkload[p.Workload]; !seen {
			order = append(order, p.Workload)
		}
		byWorkload[p.Workload] = append(byWorkload[p.Workload], p)
	}
	for _, w := range order {
		if csv {
			for _, p := range byWorkload[w] {
				fmt.Printf("fig14c,%s,%.2f,%.4f\n", w, p.Fraction, p.NormIOPS)
			}
			continue
		}
		fmt.Printf("  %-12s", w)
		for _, p := range byWorkload[w] {
			fmt.Printf("  %3.0f%%: %.3f", 100*p.Fraction, p.NormIOPS)
		}
		fmt.Println()
	}
	fmt.Println("  paper: at 60% secured data, secSSD within 6.2% of baseline (2.8% avg)")
	fmt.Println()
}

func printHeadline(h experiment.Headline) {
	fmt.Println("=== Headline (§1): secSSD vs. reprogram-based sanitization ===")
	fmt.Printf("  IOPS speedup over scrSSD:      max %.1fx, avg %.1fx   (paper: 4.8x / 2.9x)\n",
		h.IOPSSpeedupMax, h.IOPSSpeedupAvg)
	fmt.Printf("  block-erase reduction:         max %.0f%%, avg %.0f%%     (paper: 79%% / 62%%)\n",
		100*h.EraseReductionMax, 100*h.EraseReductionAvg)
	fmt.Printf("  pLock reduction from bLock:    max %.0f%%, avg %.0f%%     (paper: 57%% / 28%%)\n",
		100*h.PLockReductionMax, 100*h.PLockReductionAvg)
	fmt.Printf("  IOPS gain from bLock:          max %.1f%%, avg %.1f%%   (paper: 5.4%% / 3.1%%)\n",
		100*h.BLockIOPSGainMax, 100*h.BLockIOPSGainAvg)
}
