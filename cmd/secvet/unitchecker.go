package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

// vetConfig is the per-package configuration the go command writes for
// a -vettool invocation (the unitchecker protocol). Field names and
// semantics follow cmd/go's internal work.vetConfig.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	// ImportMap maps source import paths to the resolved package paths
	// (vendoring, test variants).
	ImportMap map[string]string
	// PackageFile maps resolved package paths to export-data files.
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single compilation unit described by a go vet
// cfg file. Diagnostics go to stderr in vet's file:line:col format;
// the exit code is 2 when findings exist, matching vet.
func unitcheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secvet: %v\n", err)
		return exitError
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "secvet: parse %s: %v\n", cfgPath, err)
		return exitError
	}

	// The go command expects the facts output file to exist even though
	// the secvet analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("secvet: no facts\n"), 0666); err != nil {
			fmt.Fprintf(os.Stderr, "secvet: %v\n", err)
			return exitError
		}
	}
	if cfg.VetxOnly {
		return exitClean
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return exitClean
			}
			fmt.Fprintf(os.Stderr, "secvet: %v\n", err)
			return exitError
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	pkg := &analysis.Package{
		PkgPath: canonical(cfg.ImportPath),
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Info:    analysis.NewInfo(),
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Pkg, _ = tconf.Check(pkg.PkgPath, fset, files, pkg.Info)
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return exitClean
		}
		for _, te := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "secvet: %v\n", te)
		}
		return exitError
	}

	diags, err := analysis.RunPackages([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secvet: %v\n", err)
		return exitError
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return exitFindings
	}
	return exitClean
}

func canonical(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}
