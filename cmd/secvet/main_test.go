package main_test

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSecvet compiles the secvet binary once per test into a temp dir.
func buildSecvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "secvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runSecvet runs the binary against a fixture module and returns its
// exit code and stderr.
func runSecvet(t *testing.T, bin, dir string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running secvet in %s: %v\n%s", dir, err, stderr.String())
	}
	return ee.ExitCode(), stderr.String()
}

// The acceptance check from the issue: reintroducing the DrainPending
// map-range bug or leaking ReadResult.Data into a struct field must
// make secvet exit nonzero, naming the violated rule.
func TestSecvetFailsOnBadModule(t *testing.T) {
	bin := buildSecvet(t)
	code, out := runSecvet(t, bin, filepath.Join("testdata", "badmodule"))
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (findings)\n%s", code, out)
	}
	for _, want := range []string{
		"determinism: map iteration order feeds append",
		"aliasing: nand.ReadResult.Data stored outside the read's statement block",
		"poolcheck: buf used after Put",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSecvetJSONOutput checks the -json emitter: findings on stdout as
// a parseable document, exit code still 2.
func TestSecvetJSONOutput(t *testing.T) {
	bin := buildSecvet(t)
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = filepath.Join("testdata", "badmodule")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit = %v, want code 2\nstderr: %s", err, stderr.String())
	}
	var rep struct {
		Count    int
		Findings []struct {
			File, Rule, Message string
			Line                int
		}
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout.String())
	}
	if rep.Count == 0 || len(rep.Findings) != rep.Count {
		t.Fatalf("count = %d, findings = %d, want equal and nonzero", rep.Count, len(rep.Findings))
	}
	rules := make(map[string]bool)
	for _, f := range rep.Findings {
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		rules[f.Rule] = true
	}
	for _, want := range []string{"determinism", "aliasing", "poolcheck"} {
		if !rules[want] {
			t.Errorf("no %s finding in JSON output:\n%s", want, stdout.String())
		}
	}
}

// TestSecvetSARIFOutput checks the -sarif emitter shape: version,
// driver name, and at least one result with a location.
func TestSecvetSARIFOutput(t *testing.T) {
	bin := buildSecvet(t)
	cmd := exec.Command(bin, "-sarif", "./...")
	cmd.Dir = filepath.Join("testdata", "badmodule")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit = %v, want code 2", err)
	}
	var log struct {
		Version string
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string
					Rules []struct{ ID string }
				}
			}
			Results []struct {
				RuleID    string
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct{ URI string }
						Region           struct{ StartLine int }
					}
				}
			}
		}
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version = %q, runs = %d, want 2.1.0 with one run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "secvet" || len(run.Tool.Driver.Rules) == 0 {
		t.Fatalf("driver = %+v, want secvet with a rule catalogue", run.Tool.Driver)
	}
	if len(run.Results) == 0 {
		t.Fatal("no results in SARIF output")
	}
	for _, r := range run.Results {
		if r.RuleID == "" || len(r.Locations) == 0 ||
			r.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" ||
			r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("incomplete SARIF result: %+v", r)
		}
	}
}

// TestSecvetExclusiveFormats rejects -json together with -sarif.
func TestSecvetExclusiveFormats(t *testing.T) {
	bin := buildSecvet(t)
	cmd := exec.Command(bin, "-json", "-sarif", "./...")
	cmd.Dir = filepath.Join("testdata", "goodmodule")
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("exit = %v, want code 1", err)
	}
}

func TestSecvetPassesOnGoodModule(t *testing.T) {
	bin := buildSecvet(t)
	code, out := runSecvet(t, bin, filepath.Join("testdata", "goodmodule"))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
}
