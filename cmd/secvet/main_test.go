package main_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSecvet compiles the secvet binary once per test into a temp dir.
func buildSecvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "secvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runSecvet runs the binary against a fixture module and returns its
// exit code and stderr.
func runSecvet(t *testing.T, bin, dir string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running secvet in %s: %v\n%s", dir, err, stderr.String())
	}
	return ee.ExitCode(), stderr.String()
}

// The acceptance check from the issue: reintroducing the DrainPending
// map-range bug or leaking ReadResult.Data into a struct field must
// make secvet exit nonzero, naming the violated rule.
func TestSecvetFailsOnBadModule(t *testing.T) {
	bin := buildSecvet(t)
	code, out := runSecvet(t, bin, filepath.Join("testdata", "badmodule"))
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (findings)\n%s", code, out)
	}
	for _, want := range []string{
		"determinism: map iteration order feeds append",
		"aliasing: nand.ReadResult.Data stored outside the read's statement block",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSecvetPassesOnGoodModule(t *testing.T) {
	bin := buildSecvet(t)
	code, out := runSecvet(t, bin, filepath.Join("testdata", "goodmodule"))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
}
