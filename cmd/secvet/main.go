// Command secvet runs the simulator's custom invariant checkers (the
// internal/analysis suite): the v1 AST rules (determinism, aliasing,
// lockcheck, tracecheck) and the v2 dataflow rules (poolcheck,
// shardcheck, auditcheck). It is a multichecker in the x/tools mold,
// runnable two ways:
//
// Standalone over package patterns (exit 2 when findings exist):
//
//	go run ./cmd/secvet ./...
//
// Machine-readable reports go to stdout with -json or -sarif (exit
// semantics unchanged); -debug prints loader statistics to stderr.
//
// As a go vet tool, speaking vet's unitchecker protocol (-V=full,
// -flags, and the per-package vet.cfg invocation):
//
//	go build -o /tmp/secvet ./cmd/secvet
//	go vet -vettool=/tmp/secvet ./...
//
// Findings are suppressed per line with an allow directive that must
// carry a reason:
//
//	//secvet:allow determinism -- progress output, not simulation state
//
// See DESIGN.md §6 for the rule catalogue.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"repro/internal/analysis"
)

const (
	exitClean    = 0
	exitError    = 1
	exitFindings = 2
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet protocol preludes, dispatched before normal flag parsing.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return exitClean
		case "-flags", "--flags":
			printFlagDefs()
			return exitClean
		}
	}

	fs := flag.NewFlagSet("secvet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: secvet [flags] [package patterns]\n\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nflags:\n")
		fs.PrintDefaults()
	}
	tests := fs.Bool("tests", true, "also analyze test files (matches go vet)")
	simpkgs := fs.String("simpkgs", "", "override the simulation-package regexp the determinism map-range rule is scoped to")
	jsonOut := fs.Bool("json", false, "write findings to stdout as JSON instead of text to stderr")
	sarifOut := fs.Bool("sarif", false, "write findings to stdout as SARIF 2.1.0 instead of text to stderr")
	debug := fs.Bool("debug", false, "print loader statistics to stderr")
	enabled := make(map[string]*bool)
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "secvet: -json and -sarif are mutually exclusive")
		return exitError
	}
	if *simpkgs != "" {
		re, err := regexp.Compile(*simpkgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secvet: bad -simpkgs: %v\n", err)
			return exitError
		}
		analysis.SimPackagePattern = re
	}
	var analyzers []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], analyzers)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}

	pkgs, err := analysis.Load(analysis.LoadOptions{Tests: *tests}, rest...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secvet: %v\n", err)
		return exitError
	}
	badTypes := false
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "secvet: typecheck %s: %v\n", p.PkgPath, te)
			badTypes = true
		}
	}
	if badTypes {
		return exitError
	}
	diags, err := analysis.RunPackages(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secvet: %v\n", err)
		return exitError
	}
	if *debug {
		st := analysis.Stats()
		fmt.Fprintf(os.Stderr, "secvet: loader: %d packages in %v (%d go list runs, %d cache hits)\n",
			st.Packages, st.Elapsed.Round(time.Millisecond), st.ListInvocations, st.CachedLists)
	}
	switch {
	case *jsonOut:
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "secvet: %v\n", err)
			return exitError
		}
	case *sarifOut:
		if err := writeSARIF(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "secvet: %v\n", err)
			return exitError
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		return exitFindings
	}
	return exitClean
}

// printVersion emits the tool-ID line the go command demands from a
// -vettool ("<name> version <...>"), keyed to the binary's own hash so
// vet results are cache-invalidated when the tool changes.
func printVersion() {
	name := filepath.Base(os.Args[0])
	sum := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			h := sha256.Sum256(data)
			sum = fmt.Sprintf("%x", h[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, sum)
}

// printFlagDefs answers the go command's `-flags` query with the JSON
// flag metadata it uses to validate `go vet` command lines.
func printFlagDefs() {
	fmt.Print("[")
	for i, a := range analysis.All() {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Printf(`{"Name":%q,"Bool":true,"Usage":%q}`, a.Name, "enable the "+a.Name+" analyzer")
	}
	fmt.Println("]")
}
