package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"repro/internal/analysis"
)

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

// writeJSON emits the findings as one indented JSON document.
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	rep := jsonReport{Count: len(diags), Findings: []jsonFinding{}}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, jsonFinding{
			File:    relPath(d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Minimal SARIF 2.1.0 document model — just the subset CI annotation
// consumers require.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF emits the findings as a SARIF 2.1.0 log. The rule
// catalogue covers the whole suite plus the allow pseudo-rules, so
// consumers can render titles even for rules with no findings.
func writeSARIF(w io.Writer, diags []analysis.Diagnostic) error {
	driver := sarifDriver{Name: "secvet"}
	for _, a := range analysis.All() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	driver.Rules = append(driver.Rules,
		sarifRule{ID: analysis.AllowRule, ShortDescription: sarifText{Text: "malformed secvet:allow directive"}},
		sarifRule{ID: analysis.AllowStaleRule, ShortDescription: sarifText{Text: "secvet:allow directive that suppresses nothing"}},
	)
	results := []sarifResult{}
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath makes a diagnostic path repo-relative (and slash-separated,
// per SARIF) when it lies under the working directory; absolute paths
// from other roots pass through untouched.
func relPath(path string) string {
	wd, err := filepath.Abs(".")
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(wd, path); err == nil && !filepath.IsAbs(rel) &&
		rel != ".." && !(len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)) {
		return filepath.ToSlash(rel)
	}
	return path
}
