// Package sim is the clean counterpart to badmodule: the same shapes
// written the approved way, so secvet exits zero.
package sim

import "sort"

// Pending drains its map through the collect-then-sort idiom.
type Pending struct {
	byPage map[int]int
}

// Drain returns the pending pages in deterministic order.
func (p *Pending) Drain() []int {
	var cmds []int
	for page := range p.byPage {
		cmds = append(cmds, page)
	}
	sort.Ints(cmds)
	return cmds
}
