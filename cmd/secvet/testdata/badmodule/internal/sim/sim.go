// Package sim reintroduces the two motivating bugs: the DrainPending
// map-range ordering bug and a ReadResult.Data leak into a struct
// field. The secvet acceptance test asserts the tool exits nonzero on
// this module and names both rules.
package sim

import (
	"badmod/internal/nand"
)

// Pending mimics the pre-fix DrainPending: iterating a map and
// appending the commands in iteration order.
type Pending struct {
	byPage map[int]int
}

// Drain leaks map iteration order into the schedule.
func (p *Pending) Drain() []int {
	var cmds []int
	for page := range p.byPage {
		cmds = append(cmds, page)
	}
	return cmds
}

// Cache leaks the read scratch into a long-lived field.
type Cache struct {
	last []byte
}

// Fill stores the alias without a copy.
func (c *Cache) Fill(chip *nand.Chip, a nand.PageAddr) error {
	res, err := chip.Read(a, 0)
	if err != nil {
		return err
	}
	c.last = res.Data
	return nil
}
