package sim

// BytePool is the payload pool stand-in poolcheck keys on (matched by
// receiver type name in a package named sim).
type BytePool struct {
	free chan []byte
}

// Get vends a buffer.
func (p *BytePool) Get() []byte {
	select {
	case b := <-p.free:
		return b[:0]
	default:
		return make([]byte, 0, 64)
	}
}

// Put recycles a buffer.
func (p *BytePool) Put(b []byte) {
	select {
	case p.free <- b:
	default:
	}
}

// Stage reads the payload after recycling it: the pool may have handed
// the backing array to a concurrent Get already.
func Stage(p *BytePool, data []byte) byte {
	buf := append(p.Get(), data...)
	p.Put(buf)
	return buf[0]
}
