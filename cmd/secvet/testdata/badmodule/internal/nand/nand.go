// Package nand is the minimal chip surface the badmodule fixture needs
// to trip the aliasing and lockcheck rules.
package nand

// PageAddr addresses one page.
type PageAddr struct{ Block, Page int }

// ReadResult mirrors the scratch-aliasing contract.
type ReadResult struct{ Data []byte }

// Chip is the fake device.
type Chip struct{ scratch []byte }

func (c *Chip) Read(a PageAddr, dep int) (ReadResult, error) {
	return ReadResult{Data: c.scratch}, nil
}

func (c *Chip) Program(a PageAddr, data []byte, dep int) (int, error) { return 0, nil }
