// Command chipchar regenerates the paper's chip-level characterization
// figures (6, 9, 10, 11b, 12) from the calibrated Vth model and prints
// them as aligned tables (default) or CSV.
//
// Usage:
//
//	chipchar [-fig 6|9|10|11|12|all] [-wls N] [-seed S] [-parallel N] [-csv]
//
// -parallel spreads the wordline sampling of the Monte-Carlo figures
// across N workers (default: one per CPU). Output is bit-identical for
// every worker count: shards own fixed wordline ranges with RNG streams
// derived from the seed, so the split is a property of the sampling
// scheme, not the machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/chipchar"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6, 9, 10, 11, 12 or all")
	wls := flag.Int("wls", 20000, "wordlines sampled per scenario")
	seed := flag.Int64("seed", 1, "model RNG seed")
	parallelN := flag.Int("parallel", 0, "worker count for wordline sampling (<=0: one per CPU)")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	flag.Parse()

	cfg := chipchar.Config{WLs: *wls, Seed: *seed, Workers: *parallelN}
	run := map[string]func(chipchar.Config, bool){
		"6":  printFig6,
		"9":  printFig9,
		"10": printFig10,
		"11": printFig11,
		"12": printFig12,
	}
	if *fig == "all" {
		for _, k := range []string{"6", "9", "10", "11", "12"} {
			run[k](cfg, *csv)
			fmt.Println()
		}
		printOverhead()
		fmt.Println()
		printTempExtension()
		return
	}
	fn, ok := run[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "chipchar: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	fn(cfg, *csv)
}

func printFig6(cfg chipchar.Config, csv bool) {
	r := chipchar.Figure6(cfg)
	fmt.Println("=== Figure 6: normalized MSB RBER under one-shot reprogram (OSR) ===")
	fmt.Printf("(%d wordlines per box; 1.0 = ECC limit)\n", cfg.WLs)
	emit := func(tech string, boxes []chipchar.Fig6Box) {
		for _, b := range boxes {
			if csv {
				fmt.Printf("fig6,%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
					tech, b.Label, b.Box.Min, b.Box.Q1, b.Box.Median, b.Box.Q3, b.Box.Max, b.FracAboveLimit)
			} else {
				fmt.Printf("  %-4s %-16s median=%6.3f  [q1=%6.3f q3=%6.3f max=%6.3f]  >limit: %5.1f%%\n",
					tech, b.Label, b.Box.Median, b.Box.Q1, b.Box.Q3, b.Box.Max, 100*b.FracAboveLimit)
			}
		}
	}
	emit("MLC", r.MLC)
	emit("TLC", r.TLC)
	fmt.Println("  paper: MLC after-OSR 7.4% beyond limit; TLC all unreadable;")
	fmt.Println("         after 1y retention most MLC pages fail, worst > 1.5x")
}

func printFig9(cfg chipchar.Config, csv bool) {
	r := chipchar.Figure9(cfg)
	fmt.Println("=== Figure 9: pLock design-space exploration ===")
	fmt.Println("(a)-(c) grid: disturb ratio (Fig 9b), flag program success (Fig 9c)")
	for _, c := range r.Combos {
		if csv {
			fmt.Printf("fig9,%g,%g,%.4f,%.4f,%.3f,%.3f,%s\n",
				c.V, c.T, c.DisturbRatio, c.FlagSuccess, c.RetErrors1y, c.RetErrors5y, c.Region)
		} else {
			fmt.Printf("  V=%4.1fV t=%3.0fµs  disturb=%.3f  success=%6.2f%%  errs@5y=%4.1f/9  -> %s\n",
				c.V, c.T, c.DisturbRatio, 100*c.FlagSuccess, c.RetErrors5y, c.Region)
		}
	}
	fmt.Println("(d) candidate retention error curves (expected failed cells of k=9):")
	fmt.Printf("  %-14s", "days:")
	for _, d := range r.RetentionDays {
		fmt.Printf("%8.0f", d)
	}
	fmt.Println()
	for key, curve := range r.RetentionErrs {
		fmt.Printf("  %-14s", key)
		for _, e := range curve {
			fmt.Printf("%8.2f", e)
		}
		fmt.Println()
	}
	fmt.Printf("chosen operating point: (%.1fV, %.0fµs)  — paper selects (Vp4, 100µs)\n",
		r.Chosen.V, r.Chosen.T)
}

func printFig10(cfg chipchar.Config, csv bool) {
	r := chipchar.Figure10(cfg)
	fmt.Println("=== Figure 10: normalized RBER vs. open-interval length ===")
	labels := make([]string, len(r.Buckets))
	for i, b := range r.Buckets {
		labels[i] = b.Label
	}
	if csv {
		for i, b := range r.Buckets {
			fmt.Printf("fig10,%s,%.4f,%.4f,%.4f\n", b.Label, r.NoPE[i], r.PE[i], r.PERet[i])
		}
		return
	}
	fmt.Printf("  %-22s %s\n", "condition", strings.Join(pad(labels, 12), ""))
	row := func(name string, xs []float64) {
		fmt.Printf("  %-22s", name)
		for _, x := range xs {
			fmt.Printf("%12.3f", x)
		}
		fmt.Println()
	}
	row("no P/E cycling", r.NoPE)
	row("after P/E cycling", r.PE)
	row("after P/E + retention", r.PERet)
	growth := r.NoPE[len(r.NoPE)-1]/r.NoPE[0] - 1
	fmt.Printf("  zero -> very-long growth: %.0f%% (paper reports ~30%%)\n", 100*growth)
}

func printFig11(cfg chipchar.Config, csv bool) {
	r := chipchar.Figure11(cfg)
	fmt.Println("=== Figure 11(b): block read RBER vs. SSL center Vth ===")
	for i, c := range r.Centers {
		if csv {
			fmt.Printf("fig11,%.2f,%.4f,%.4f\n", c, r.Fresh[i], r.Cycled[i])
		} else if i%2 == 0 {
			fmt.Printf("  center=%.2fV  fresh=%8.3f  1K-P/E=%8.3f\n", c, r.Fresh[i], r.Cycled[i])
		}
	}
	fmt.Printf("  read-failure cutoff: %.2fV (paper: 3V)\n", r.Cutoff)
}

func printFig12(cfg chipchar.Config, csv bool) {
	r := chipchar.Figure12(cfg)
	fmt.Println("=== Figure 12: bLock design-space exploration ===")
	for _, c := range r.Combos {
		if csv {
			fmt.Printf("fig12,%g,%g,%.3f,%.3f,%.3f,%s,%v\n",
				c.V, c.T, c.ProgrammedCenter, c.Center1y, c.Center5y, c.Region, c.Reliable)
			continue
		}
		status := string("region-I")
		if c.Region == chipchar.RegionCandidate {
			if c.Reliable {
				status = "candidate (reliable 5y)"
			} else {
				status = "candidate (fails retention)"
			}
		}
		fmt.Printf("  V=%2.0fV t=%3.0fµs  prog=%5.2fV  1y=%5.2fV  5y=%5.2fV  -> %s\n",
			c.V, c.T, c.ProgrammedCenter, c.Center1y, c.Center5y, status)
	}
	fmt.Printf("chosen operating point: (%.0fV, %.0fµs)  — paper selects (Vb6, 300µs)\n",
		r.Chosen.V, r.Chosen.T)
}

func pad(xs []string, w int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		for len(x) < w {
			x = " " + x
		}
		out[i] = x
	}
	return out
}

func printOverhead() {
	o := chipchar.ComputeOverhead(9)
	fmt.Println("=== §5.5 implementation overhead ===")
	fmt.Printf("  pAP flags: %d spare cells/WL (%.2f%% of the spare area)\n",
		o.FlagCellsPerWL, 100*o.SpareFraction)
	fmt.Printf("  circuits:  ~%d transistors (9-bit majority) + %d bridge transistors\n",
		o.MajorityTransistors, o.BridgeTransistors)
	fmt.Printf("  latency:   tpLock/tPROG = %.1f%% (paper < 14.3%%), tbLock/tBERS = %.1f%% (paper < 8.6%%)\n",
		100*o.TpLockOverTprog, 100*o.TbLockOverTbers)
}

func printTempExtension() {
	fmt.Println("=== Extension: lock durability vs. storage temperature ===")
	fmt.Println("(Arrhenius-accelerated retention; the paper qualifies at 30°C)")
	for _, p := range chipchar.LockDurabilityVsTemperature(nil) {
		hold := "holds"
		if !p.SSLHolds {
			hold = "FAILS"
		}
		fmt.Printf("  %3.0f°C: pAP majority-flip(5y) = %.2e, SSL center(5y) = %.2fV -> bLock %s\n",
			p.TempC, p.PAPMajorityFail5y, p.SSLCenter5y, hold)
	}
}
