package repro

// BenchmarkLockBatching measures the amortization tentpole end to end:
// the same secured file-churn workload on the device with every
// parallelism feature off ("disabled": single plane, no cache-mode
// pipelining, one pLock pulse per page) and with all of them on
// ("enabled": two planes, cached transfers, wordline-aware pLock
// batching). The headline metric is simulated IOPS — a deterministic
// quantity, so the comparison is machine-independent — and the result
// is written to BENCH_batching.json for CI to archive and for
// cmd/benchguard to gate (the enabled device must stay >= 1.5x the
// disabled one).

import (
	"encoding/json"
	"os"
	"sync"
	"testing"

	"repro/internal/blockio"
	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/nand/vth"
	"repro/internal/sanitize"
	"repro/internal/ssd"
)

var batchingBenchOnce sync.Once

// batchingBenchReport is the schema of BENCH_batching.json. The IOPS
// values are simulated (virtual-time) throughput, so they are exact
// across machines; Speedup = EnabledIOPS / DisabledIOPS.
type batchingBenchReport struct {
	Iterations        int     `json:"iterations"`
	DisabledIOPS      float64 `json:"batching_disabled_iops"`
	EnabledIOPS       float64 `json:"batching_enabled_iops"`
	Speedup           float64 `json:"batching_speedup"`
	DisabledPLocks    uint64  `json:"plocks_disabled"`
	EnabledPLocks     uint64  `json:"plocks_enabled"`
	PLockBatches      uint64  `json:"plock_batches"`
	PLockBatchedPages uint64  `json:"plock_batched_pages"`
}

// batchingBenchDevice builds the 2x2-chip device the benchmark churns.
func batchingBenchDevice(b *testing.B, amortized bool) *ssd.SSD {
	cfg := ssd.Config{
		Channels:        2,
		ChipsPerChannel: 2,
		Chip: nand.Geometry{
			Blocks:          16,
			WLsPerBlock:     8,
			CellKind:        vth.TLC,
			PageBytes:       4096,
			FlagCells:       9,
			EnduranceCycles: 1000,
		},
		OverProvision:   0.25,
		GCFreeBlocksLow: 2,
		QueueDepth:      8,
		Policy:          sanitize.SecSSD(),
		Seed:            7,
	}
	if amortized {
		cfg.Planes = 2
		cfg.LockBatch = ftl.LockBatchConfig{Enabled: true}
	} else {
		cfg.NoCachePipeline = true
	}
	s, err := ssd.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// batchingChurn runs the secured file-churn cycle: write a 24-page
// secured file, read it back, trim most of it. The partial trim (21 of
// 24 pages) keeps every block shy of fully-stale, so the disabled
// device cannot amortize the sanitization through bLock escalation —
// it pays one tpLock per page while the batched device pays one SBPI
// pulse per wordline.
func batchingChurn(b *testing.B, s *ssd.SSD, iters int) ssd.Report {
	logical := int64(s.LogicalPages())
	const span = 24
	slots := logical / span
	s.Mark()
	for i := 0; i < iters; i++ {
		lpa := (int64(i) % slots) * span
		mustReq(b, s, blockio.Request{Op: blockio.OpWrite, LPA: lpa, Pages: span})
		mustReq(b, s, blockio.Request{Op: blockio.OpRead, LPA: lpa, Pages: span})
		mustReq(b, s, blockio.Request{Op: blockio.OpTrim, LPA: lpa, Pages: span - 3})
	}
	s.FlushLocks()
	return s.Report()
}

func mustReq(b *testing.B, s *ssd.SSD, req blockio.Request) {
	b.Helper()
	if _, err := s.Submit(req); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLockBatching(b *testing.B) {
	const iters = 300
	run := func(amortized bool) func(b *testing.B) {
		return func(b *testing.B) {
			var r ssd.Report
			for i := 0; i < b.N; i++ {
				r = batchingChurn(b, batchingBenchDevice(b, amortized), iters)
			}
			b.ReportMetric(r.IOPS, "sim-IOPS")
			b.ReportMetric(float64(r.Stats.PLocks), "pLocks")
			b.ReportMetric(float64(r.Stats.PLockBatches), "batched-pulses")
		}
	}
	b.Run("disabled", run(false))
	b.Run("enabled", func(b *testing.B) {
		run(true)(b)
		batchingBenchOnce.Do(func() { writeBatchingBenchReport(b, iters) })
	})
}

// writeBatchingBenchReport runs one explicit churn at each feature
// setting and writes BENCH_batching.json into the package directory.
func writeBatchingBenchReport(b *testing.B, iters int) {
	off := batchingChurn(b, batchingBenchDevice(b, false), iters)
	on := batchingChurn(b, batchingBenchDevice(b, true), iters)
	rep := batchingBenchReport{
		Iterations:        iters,
		DisabledIOPS:      off.IOPS,
		EnabledIOPS:       on.IOPS,
		DisabledPLocks:    off.Stats.PLocks,
		EnabledPLocks:     on.Stats.PLocks,
		PLockBatches:      on.Stats.PLockBatches,
		PLockBatchedPages: on.Stats.PLockBatchedPages,
	}
	if off.IOPS > 0 {
		rep.Speedup = on.IOPS / off.IOPS
	}
	b.ReportMetric(rep.Speedup, "speedup")

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_batching.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("BENCH_batching.json: disabled %.0f sim-IOPS, enabled %.0f sim-IOPS, speedup %.2fx (%d batched pulses / %d pages)",
		rep.DisabledIOPS, rep.EnabledIOPS, rep.Speedup, rep.PLockBatches, rep.PLockBatchedPages)
}
